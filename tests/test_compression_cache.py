"""Codec memoization cache."""

import numpy as np
import pytest

from repro.compression import MpcCompressor, ZfpCompressor
from repro.compression.cache import CodecCache


def test_compress_hit_on_equal_bytes(rng):
    cache = CodecCache()
    codec = MpcCompressor(1)
    a = rng.standard_normal(1000).astype(np.float32)
    b = a.copy()  # different object, same bytes
    c1 = cache.compress(codec, a)
    c2 = cache.compress(codec, b)
    assert cache.hits == 1 and cache.misses == 1
    assert c1 is c2


def test_different_params_miss(rng):
    cache = CodecCache()
    a = rng.standard_normal(1000).astype(np.float32)
    cache.compress(MpcCompressor(1), a)
    cache.compress(MpcCompressor(2), a)
    assert cache.misses == 2


def test_different_codec_miss(rng):
    cache = CodecCache()
    a = rng.standard_normal(1000).astype(np.float32)
    cache.compress(MpcCompressor(1), a)
    cache.compress(ZfpCompressor(16), a)
    assert cache.misses == 2


def test_decompress_returns_fresh_copy(rng):
    cache = CodecCache()
    codec = MpcCompressor(1)
    a = rng.standard_normal(1000).astype(np.float32)
    comp = codec.compress(a)
    d1 = cache.decompress(codec, comp)
    d2 = cache.decompress(codec, comp)
    assert cache.hits == 1
    assert np.array_equal(d1, d2)
    d1[0] = 999.0  # mutating one must not poison the other
    d3 = cache.decompress(codec, comp)
    assert d3[0] != 999.0


def test_lru_eviction(rng):
    cache = CodecCache(max_bytes=10_000)
    codec = MpcCompressor(1)
    arrays = [rng.standard_normal(2000).astype(np.float32) for _ in range(8)]
    for a in arrays:
        cache.compress(codec, a)
    cache.compress(codec, arrays[0])  # early entry was evicted
    assert cache.misses == 9
    assert cache._bytes <= 10_000


def test_clear(rng):
    cache = CodecCache()
    cache.compress(MpcCompressor(1), rng.standard_normal(100).astype(np.float32))
    cache.clear()
    assert cache.hits == cache.misses == 0
    assert len(cache._store) == 0


def test_cache_correctness_under_mpc_roundtrip(rng):
    cache = CodecCache()
    codec = MpcCompressor(2)
    x = np.cumsum(rng.standard_normal(5000)).astype(np.float32)
    comp = cache.compress(codec, x)
    y = cache.decompress(codec, comp)
    assert np.array_equal(x.view(np.uint32), y.view(np.uint32))
