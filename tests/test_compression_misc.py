"""Tests for FPC, the null codec, the registry and the perf models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    FpcCompressor,
    NullCompressor,
    available,
    feature_table,
    get_compressor,
    kernel_cost_model_for,
    register,
)
from repro.compression.perfmodel import MPC_V100, NULL_MODEL, ZFP_V100
from repro.compression.registry import TABLE1_ROWS
from repro.errors import CompressionError, ConfigError
from repro.utils.units import Gbps

from tests.conftest import smooth_f32


def bits_equal(a, b):
    u = np.uint32 if a.dtype == np.float32 else np.uint64
    return a.shape == b.shape and np.array_equal(a.view(u), b.view(u))


# -- FPC --------------------------------------------------------------------

@pytest.mark.parametrize("dtype", [np.float32, np.float64])
@pytest.mark.parametrize("n", [0, 1, 2, 3, 100, 1001])
def test_fpc_roundtrip(dtype, n, rng):
    x = np.cumsum(rng.standard_normal(n)).astype(dtype)
    c = FpcCompressor()
    assert bits_equal(c.decompress(c.compress(x)), x)


def test_fpc_specials_roundtrip():
    x = np.array([np.nan, np.inf, -0.0, 1e-40], dtype=np.float32)
    c = FpcCompressor()
    assert bits_equal(c.decompress(c.compress(x)), x)


def test_fpc_constant_compresses_well():
    x = np.full(10_000, 2.5, dtype=np.float64)
    assert FpcCompressor().compress(x).ratio > 10


def test_fpc_smooth_beats_random(rng):
    smooth = smooth_f32(20_000)
    random = rng.standard_normal(20_000).astype(np.float32)
    c = FpcCompressor()
    assert c.compress(smooth).ratio > c.compress(random).ratio


def test_fpc_size_mismatch_rejected(rng):
    c = FpcCompressor()
    comp = c.compress(rng.standard_normal(100).astype(np.float64))
    comp.payload = comp.payload[:-3]
    with pytest.raises(CompressionError):
        c.decompress(comp)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(allow_nan=True, allow_infinity=True, width=32),
                min_size=0, max_size=150))
def test_fpc_property_lossless(data):
    x = np.array(data, dtype=np.float32)
    c = FpcCompressor()
    assert bits_equal(c.decompress(c.compress(x)), x)


# -- Null ---------------------------------------------------------------------

def test_null_identity(rng):
    x = rng.standard_normal(100).astype(np.float32)
    c = NullCompressor()
    comp = c.compress(x)
    assert comp.ratio == pytest.approx(1.0)
    assert bits_equal(c.decompress(comp), x)


def test_null_expected_size():
    assert NullCompressor().expected_compressed_bytes(10, 4) == 40


# -- registry -----------------------------------------------------------------

def test_registry_contents():
    assert {"mpc", "zfp", "fpc", "null"} <= set(available())


def test_get_compressor_with_params():
    c = get_compressor("zfp", rate=8)
    assert c.rate == 8
    m = get_compressor("mpc", dimensionality=4)
    assert m.dimensionality == 4


def test_get_compressor_unknown():
    with pytest.raises(CompressionError, match="unknown compressor"):
        get_compressor("zstd")


def test_register_custom():
    class Custom(NullCompressor):
        name = "null"

    register("custom-null", Custom)
    assert isinstance(get_compressor("custom-null"), Custom)


def test_feature_table_matches_table1():
    rows = feature_table()
    assert len(rows) == len(TABLE1_ROWS) == 10
    names = [r[0] for r in rows]
    assert names[0] == "FPC"
    assert names[-2:] == ["Proposed MPC-OPT", "Proposed ZFP-OPT"]
    # Only the proposed schemes have efficient MPI support (last col
    # before 'implemented').
    mpi_col = [r[7] for r in rows]
    assert mpi_col[-2:] == ["yes", "yes"]
    assert mpi_col[4:8] == ["no", "no", "no", "no"]  # GFC/MPC/SZ/ZFP


# -- perf models ---------------------------------------------------------------

def test_model_lookup():
    assert kernel_cost_model_for("mpc") is MPC_V100
    assert kernel_cost_model_for("zfp") is ZFP_V100
    with pytest.raises(ConfigError):
        kernel_cost_model_for("nope")


def test_throughput_calibration_table3():
    """Full-device V100 effective throughput must be within 15% of the
    paper's Table III numbers."""
    nbytes = 64 << 20
    t = MPC_V100.compress_time(nbytes, 80, 80)
    eff = nbytes / t  # bytes/s
    assert eff == pytest.approx(Gbps(205.0), rel=0.20)
    t = ZFP_V100.compress_time(nbytes, 80, 80)
    assert nbytes / t == pytest.approx(Gbps(450.0), rel=0.15)
    t = ZFP_V100.decompress_time(nbytes, 80, 80)
    assert nbytes / t == pytest.approx(Gbps(730.0), rel=0.15)


def test_half_sms_roughly_full_speed():
    """Paper Sec IV: 'the compression/decompression runtime of using
    half of the available SMs is roughly the same as using full GPU'."""
    nbytes = 16 << 20
    t_full = MPC_V100.compress_time(nbytes, 80, 80)
    t_half = MPC_V100.compress_time(nbytes, 40, 80)
    assert t_half <= 1.35 * t_full


def test_mpc_sync_overhead_grows_with_blocks():
    """More thread blocks in one kernel = more busy-wait cost."""
    nbytes = 1 << 20
    t80 = MPC_V100.compress_time(nbytes, 80, 80)
    t10 = MPC_V100.compress_time(nbytes, 10, 80)
    sync80 = MPC_V100.sync_per_block * 80
    sync10 = MPC_V100.sync_per_block * 10
    assert sync80 > sync10
    assert t80 - sync80 < t10 - sync10  # pure-kernel part still faster at 80


def test_partitioned_aggregate_beats_single_kernel():
    """8 concurrent kernels of 10 blocks outperform one 80-block
    kernel — the justification for MPC-OPT's decomposition."""
    nbytes = 32 << 20
    single = MPC_V100.compress_time(nbytes, 80, 80)
    per_part = MPC_V100.compress_time(nbytes // 8, 10, 80)
    assert per_part < single / 2


def test_device_scaling():
    nbytes = 8 << 20
    t_v100 = ZFP_V100.compress_time(nbytes, 80, 80)
    t_rtx = ZFP_V100.compress_time(nbytes, 48, 48)
    assert t_rtx > t_v100  # fewer SMs = slower


def test_zero_block_kernel_rejected():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        MPC_V100.compress_time(1024, 0, 80)


def test_null_model_free():
    assert NULL_MODEL.compress_time(1 << 30, 1, 80) == 0.0
