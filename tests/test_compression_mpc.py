"""Unit + property tests for the MPC codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import MpcCompressor
from repro.compression.mpc import bit_transpose
from repro.errors import CompressionError

from tests.conftest import smooth_f32


def bits_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Bit-exact comparison (NaN-safe)."""
    u = np.uint32 if a.dtype == np.float32 else np.uint64
    return a.shape == b.shape and np.array_equal(a.view(u), b.view(u))


# -- bit transpose ------------------------------------------------------------

def test_bit_transpose_involution_u32(rng):
    w = rng.integers(0, 1 << 32, 320, dtype=np.uint64).astype(np.uint32)
    assert np.array_equal(bit_transpose(bit_transpose(w)), w)


def test_bit_transpose_involution_u64(rng):
    w = rng.integers(0, 1 << 62, 128, dtype=np.uint64)
    assert np.array_equal(bit_transpose(bit_transpose(w)), w)


def test_bit_transpose_zero_block():
    z = np.zeros(32, dtype=np.uint32)
    assert np.array_equal(bit_transpose(z), z)


def test_bit_transpose_low_bits_give_zero_words():
    """Words with only 8 low bits set must transpose to <= 8 non-zero
    words — the property zero elimination relies on."""
    rng = np.random.default_rng(0)
    w = rng.integers(0, 1 << 8, 64, dtype=np.uint64).astype(np.uint32)
    t = bit_transpose(w)
    assert np.count_nonzero(t) <= 16  # 8 bit-rows per 32-word block x 2 blocks


def test_bit_transpose_bad_dtype():
    with pytest.raises(CompressionError):
        bit_transpose(np.zeros(32, dtype=np.int32))


def test_bit_transpose_bad_length():
    with pytest.raises(CompressionError):
        bit_transpose(np.zeros(31, dtype=np.uint32))


def test_bit_transpose_empty():
    out = bit_transpose(np.empty(0, dtype=np.uint32))
    assert out.size == 0


# -- round trips -----------------------------------------------------------------

@pytest.mark.parametrize("dtype", [np.float32, np.float64])
@pytest.mark.parametrize("n", [0, 1, 2, 31, 32, 33, 63, 64, 65, 1000, 4097])
@pytest.mark.parametrize("dim", [1, 2, 3, 8])
def test_roundtrip_shapes(dtype, n, dim, rng):
    x = np.cumsum(rng.standard_normal(n)).astype(dtype)
    codec = MpcCompressor(dim)
    assert bits_equal(codec.decompress(codec.compress(x)), x)


def test_roundtrip_special_values():
    x = np.array(
        [np.nan, np.inf, -np.inf, -0.0, 0.0, 1e-45, 1e-40, 3.4e38, -3.4e38],
        dtype=np.float32,
    )
    codec = MpcCompressor(2)
    assert bits_equal(codec.decompress(codec.compress(x)), x)


def test_roundtrip_float64_specials():
    x = np.array([np.nan, np.inf, -0.0, 5e-324, 1.7e308], dtype=np.float64)
    codec = MpcCompressor(1)
    assert bits_equal(codec.decompress(codec.compress(x)), x)


def test_roundtrip_2d_input_flattened(rng):
    x = rng.standard_normal((10, 10)).astype(np.float32)
    codec = MpcCompressor(1)
    out = codec.decompress(codec.compress(x))
    assert bits_equal(out, x.reshape(-1))


# -- ratio behaviour ------------------------------------------------------------

def test_constant_data_high_ratio():
    x = np.full(100_000, 3.14, dtype=np.float32)
    # Paper Sec VII-A: MPC ratio "as high as 31" on duplicated data.
    assert MpcCompressor(1).compress(x).ratio > 20


def test_smooth_better_than_random(rng):
    smooth = smooth_f32(50_000)
    random = rng.standard_normal(50_000).astype(np.float32)
    c = MpcCompressor(1)
    assert c.compress(smooth).ratio > c.compress(random).ratio


def test_random_data_bounded_expansion(rng):
    x = rng.standard_normal(50_000).astype(np.float32)
    ratio = MpcCompressor(1).compress(x).ratio
    assert ratio > 0.9  # worst case: ~3% expansion from the bitmap


def test_interleaved_data_prefers_matching_dimensionality(rng):
    a = smooth_f32(4096, seed=1)
    b = smooth_f32(4096, seed=2) * 100
    interleaved = np.stack([a, b], axis=1).reshape(-1)
    r1 = MpcCompressor(1).compress(interleaved).ratio
    r2 = MpcCompressor(2).compress(interleaved).ratio
    assert r2 > r1


def test_best_dimensionality_finds_stride(rng):
    a = smooth_f32(4096, seed=3)
    b = smooth_f32(4096, seed=4) * 77
    c = smooth_f32(4096, seed=5) * 0.01
    interleaved = np.stack([a, b, c], axis=1).reshape(-1)
    assert MpcCompressor.best_dimensionality(interleaved, range(1, 5)) == 3


def test_ratio_for_helper(smooth_signal):
    c = MpcCompressor(1)
    assert c.ratio_for(smooth_signal) == pytest.approx(c.compress(smooth_signal).ratio)


# -- headers / params ---------------------------------------------------------------

def test_compressed_data_metadata(smooth_signal):
    comp = MpcCompressor(3).compress(smooth_signal)
    assert comp.algorithm == "mpc"
    assert comp.params == {"dimensionality": 3}
    assert comp.n_elements == smooth_signal.size
    assert comp.meta["compressed_bytes"] == comp.nbytes
    assert comp.original_nbytes == smooth_signal.nbytes


def test_decompress_with_mismatched_instance_uses_params(smooth_signal):
    """A receiver constructed with a different default dimensionality
    must honour the header's dimensionality."""
    comp = MpcCompressor(4).compress(smooth_signal)
    out = MpcCompressor(1).decompress(comp)
    assert bits_equal(out, smooth_signal)


def test_invalid_dimensionality():
    with pytest.raises(CompressionError):
        MpcCompressor(0)


def test_wrong_algorithm_payload_rejected(smooth_signal):
    from repro.compression import ZfpCompressor

    comp = ZfpCompressor(16).compress(smooth_signal)
    with pytest.raises(CompressionError):
        MpcCompressor(1).decompress(comp)


def test_truncated_payload_rejected(smooth_signal):
    comp = MpcCompressor(1).compress(smooth_signal)
    comp.payload = comp.payload[: comp.payload.size // 2]
    with pytest.raises(CompressionError):
        MpcCompressor(1).decompress(comp)


def test_unsupported_dtype_rejected():
    with pytest.raises(CompressionError):
        MpcCompressor(1).compress(np.arange(10, dtype=np.int32))


def test_non_array_rejected():
    with pytest.raises(CompressionError):
        MpcCompressor(1).compress([1.0, 2.0])


# -- property-based -----------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    data=st.lists(
        st.floats(width=32, allow_nan=True, allow_infinity=True),
        min_size=0, max_size=300,
    ),
    dim=st.integers(min_value=1, max_value=9),
)
def test_property_lossless_roundtrip_f32(data, dim):
    x = np.array(data, dtype=np.float32)
    codec = MpcCompressor(dim)
    assert bits_equal(codec.decompress(codec.compress(x)), x)


@settings(max_examples=25, deadline=None)
@given(
    data=st.lists(st.floats(allow_nan=False, allow_infinity=False),
                  min_size=1, max_size=200),
    dim=st.integers(min_value=1, max_value=4),
)
def test_property_lossless_roundtrip_f64(data, dim):
    x = np.array(data, dtype=np.float64)
    codec = MpcCompressor(dim)
    assert bits_equal(codec.decompress(codec.compress(x)), x)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=2000))
def test_property_compressed_size_bound(n):
    """Compressed size never exceeds the engine's worst-case bound."""
    rng = np.random.default_rng(n)
    x = rng.standard_normal(n).astype(np.float32)
    comp = MpcCompressor(1).compress(x)
    assert comp.nbytes <= x.nbytes + x.nbytes // 16 + 4096
