"""SZ-style and GFC codecs (Table I completion)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import get_compressor
from repro.compression.gfc import GfcCompressor
from repro.compression.sz import SzCompressor
from repro.errors import CompressionError

from tests.conftest import smooth_f32


# -- SZ ----------------------------------------------------------------------

@pytest.mark.parametrize("eb", [1e-1, 1e-3, 1e-6])
@pytest.mark.parametrize("n", [1, 63, 64, 65, 1000, 10_001])
def test_sz_error_bound_guaranteed(eb, n, rng):
    x = np.cumsum(rng.standard_normal(n)).astype(np.float32)
    codec = SzCompressor(eb)
    y = codec.decompress(codec.compress(x))
    assert y.shape == x.shape
    assert np.abs(x.astype(np.float64) - y.astype(np.float64)).max() <= eb * 1.0001


def test_sz_error_bound_float64(rng):
    x = np.cumsum(rng.standard_normal(5000))
    codec = SzCompressor(1e-8)
    y = codec.decompress(codec.compress(x))
    assert np.abs(x - y).max() <= 1e-8 * 1.0001


def test_sz_smooth_compresses_well():
    x = np.sin(np.linspace(0, 30, 100_000)).astype(np.float32)
    # eb = 1e-4 of the range: smooth data should beat ratio 4
    comp = SzCompressor(1e-4).compress(x)
    assert comp.ratio > 4


def test_sz_looser_bound_better_ratio(smooth_signal):
    r_loose = SzCompressor(1e-2).compress(smooth_signal).ratio
    r_tight = SzCompressor(1e-6).compress(smooth_signal).ratio
    assert r_loose > r_tight


def test_sz_rough_data_outliers(rng):
    """White noise much larger than eb forces outliers; the bound must
    still hold and ratio degrade gracefully."""
    x = (rng.standard_normal(4096) * 1e6).astype(np.float32)
    codec = SzCompressor(1e-6)
    comp = codec.compress(x)
    y = codec.decompress(comp)
    assert np.abs(x - y).max() <= 1e-6 * 1.0001 or np.array_equal(x, y)
    assert comp.ratio > 0.45  # bounded expansion


def test_sz_constant_block_exact():
    x = np.full(640, 2.5, dtype=np.float32)
    codec = SzCompressor(1e-3)
    y = codec.decompress(codec.compress(x))
    assert np.allclose(y, x, atol=1e-3)


def test_sz_zero_array():
    x = np.zeros(100, dtype=np.float32)
    codec = SzCompressor(1e-5)
    assert np.array_equal(codec.decompress(codec.compress(x)), x)


def test_sz_empty():
    codec = SzCompressor(1e-3)
    assert codec.decompress(codec.compress(np.empty(0, np.float32))).size == 0


def test_sz_validation():
    with pytest.raises(CompressionError):
        SzCompressor(0.0)
    with pytest.raises(CompressionError):
        SzCompressor(float("nan"))
    with pytest.raises(CompressionError):
        SzCompressor(1e-3).compress(np.array([np.inf], dtype=np.float32))


def test_sz_in_registry():
    codec = get_compressor("sz", error_bound=1e-2)
    assert codec.error_bound == 1e-2


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                            allow_infinity=False), min_size=1, max_size=300),
    eb=st.sampled_from([1e-1, 1e-3, 1e-5]),
)
def test_sz_property_bound(data, eb):
    x = np.array(data, dtype=np.float64)
    codec = SzCompressor(eb)
    y = codec.decompress(codec.compress(x))
    assert np.abs(x - y).max() <= eb * 1.0001


# -- GFC ---------------------------------------------------------------------

def bits_equal64(a, b):
    return a.shape == b.shape and np.array_equal(a.view(np.uint64), b.view(np.uint64))


@pytest.mark.parametrize("n", [0, 1, 2, 100, 1001])
def test_gfc_roundtrip(n, rng):
    x = np.cumsum(rng.standard_normal(n))
    codec = GfcCompressor()
    assert bits_equal64(codec.decompress(codec.compress(x)), x)


def test_gfc_specials():
    x = np.array([np.nan, np.inf, -np.inf, -0.0, 5e-324, 1.7e308])
    codec = GfcCompressor()
    assert bits_equal64(codec.decompress(codec.compress(x)), x)


def test_gfc_rejects_float32(rng):
    with pytest.raises(CompressionError):
        GfcCompressor().compress(rng.standard_normal(10).astype(np.float32))


def test_gfc_smooth_compresses(rng):
    x = np.cumsum(rng.standard_normal(50_000) * 1e-6)
    assert GfcCompressor().compress(x).ratio > 1.15
    # ... and beats its ratio on white noise
    noise = rng.standard_normal(50_000)
    assert GfcCompressor().compress(x).ratio > GfcCompressor().compress(noise).ratio


def test_gfc_constant_high_ratio():
    x = np.full(10_000, 3.25)
    assert GfcCompressor().compress(x).ratio > 10


def test_gfc_truncated_payload(rng):
    codec = GfcCompressor()
    comp = codec.compress(np.cumsum(rng.standard_normal(100)))
    comp.payload = comp.payload[:-1]
    with pytest.raises(CompressionError):
        codec.decompress(comp)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(allow_nan=True, allow_infinity=True),
                min_size=0, max_size=150))
def test_gfc_property_lossless(data):
    x = np.array(data, dtype=np.float64)
    codec = GfcCompressor()
    assert bits_equal64(codec.decompress(codec.compress(x)), x)


def test_table1_now_fully_implemented_gpu_rows():
    from repro.compression.registry import TABLE1_ROWS

    gpu_rows = [r for r in TABLE1_ROWS if r["gpu"]]
    assert all(r["implemented"] for r in gpu_rows)


def test_perf_models_for_new_codecs():
    from repro.compression import kernel_cost_model_for

    assert kernel_cost_model_for("sz").name == "sz"
    assert kernel_cost_model_for("gfc").name == "gfc"
