"""Unit + property tests for the fixed-rate ZFP codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import ZfpCompressor
from repro.compression.zfp import forward_lift, inverse_lift, plan_bit_allocation
from repro.errors import CompressionError


# -- lifting transform ---------------------------------------------------------

def test_lift_near_invertible(rng):
    q = rng.integers(-(1 << 29), 1 << 29, size=(100, 4), dtype=np.int64)
    back = inverse_lift(forward_lift(q))
    # The >>1 steps drop at most a few ulps (matching upstream zfp).
    assert np.abs(back - q).max() <= 4


def test_lift_zero_block():
    z = np.zeros((3, 4), dtype=np.int64)
    assert np.array_equal(forward_lift(z), z)
    assert np.array_equal(inverse_lift(z), z)


def test_lift_constant_block_concentrates_dc():
    q = np.full((1, 4), 1000, dtype=np.int64)
    c = forward_lift(q)
    assert abs(c[0, 0]) > 0
    assert np.abs(c[0, 1:]).max() <= 2  # AC coefficients ~0 for constants


def test_lift_smooth_block_decays():
    q = np.array([[1000, 1010, 1020, 1030]], dtype=np.int64)
    c = np.abs(forward_lift(q))
    assert c[0, 0] > c[0, 2]
    assert c[0, 0] > c[0, 3]


# -- bit allocation ----------------------------------------------------------------

@pytest.mark.parametrize("rate", [3, 4, 8, 16, 24, 32])
def test_allocation_sums_to_budget_f32(rate):
    kept = plan_bit_allocation(rate, 32)
    assert sum(kept) == 4 * rate - 12
    assert all(0 <= k <= 32 for k in kept)


@pytest.mark.parametrize("rate", [3, 16, 48, 64])
def test_allocation_sums_to_budget_f64(rate):
    kept = plan_bit_allocation(rate, 64)
    assert sum(kept) == 4 * rate - 12
    assert all(0 <= k <= 64 for k in kept)


def test_allocation_favours_low_frequency():
    kept = plan_bit_allocation(8, 32)
    assert kept[0] >= kept[1] >= kept[2] >= kept[3]


def test_allocation_rate_too_small():
    with pytest.raises(CompressionError):
        plan_bit_allocation(2, 32)


# -- fixed-rate size ---------------------------------------------------------------

@pytest.mark.parametrize("rate", [4, 8, 16])
@pytest.mark.parametrize("n", [1, 3, 4, 5, 100, 1001])
def test_compressed_size_exactly_predictable(rate, n, rng):
    """The property ZFP-OPT exploits to skip the size copy."""
    codec = ZfpCompressor(rate)
    x = rng.standard_normal(n).astype(np.float32)
    comp = codec.compress(x)
    assert comp.nbytes == codec.expected_compressed_bytes(n, 4)


def test_rate16_halves_f32():
    codec = ZfpCompressor(16)
    # Paper Sec II: "16 bits/value for 32-bit single-precision ...
    # can yield a compression ratio of 2".
    assert codec.expected_compressed_bytes(4096, 4) == 4096 * 2


@pytest.mark.parametrize("rate,cr", [(4, 8.0), (8, 4.0), (16, 2.0)])
def test_fixed_ratio(rate, cr, rng):
    x = rng.standard_normal(1 << 12).astype(np.float32)
    assert ZfpCompressor(rate).compress(x).ratio == pytest.approx(cr, rel=0.01)


# -- accuracy ------------------------------------------------------------------

@pytest.mark.parametrize("rate", [8, 16, 24, 32])
def test_error_within_bound_smooth(rate):
    x = np.sin(np.linspace(0, 20, 4001)).astype(np.float32)
    codec = ZfpCompressor(rate)
    y = codec.decompress(codec.compress(x))
    assert np.abs(x - y).max() <= codec.max_abs_error_bound(x)


@pytest.mark.parametrize("rate", [8, 16, 32])
def test_error_within_bound_rough(rate, rng):
    x = rng.standard_normal(2048).astype(np.float32)
    codec = ZfpCompressor(rate)
    y = codec.decompress(codec.compress(x))
    assert np.abs(x - y).max() <= codec.max_abs_error_bound(x)


def test_higher_rate_more_accurate():
    x = np.sin(np.linspace(0, 20, 4000)).astype(np.float32)
    errs = []
    for rate in (4, 8, 16, 24):
        codec = ZfpCompressor(rate)
        errs.append(np.abs(x - codec.decompress(codec.compress(x))).max())
    assert errs == sorted(errs, reverse=True)
    assert errs[-1] < 1e-4


def test_rate4_very_lossy():
    """The paper's AWP observation: rate 4 'exceeds the lowest
    precision AWP-ODC can tolerate'."""
    x = np.sin(np.linspace(0, 20, 4000)).astype(np.float32)
    codec = ZfpCompressor(4)
    err = np.abs(x - codec.decompress(codec.compress(x))).max()
    assert err > 1e-2


def test_zero_array_exact():
    x = np.zeros(1000, dtype=np.float32)
    codec = ZfpCompressor(8)
    assert np.array_equal(codec.decompress(codec.compress(x)), x)


def test_constant_array_close():
    x = np.full(1000, 7.25, dtype=np.float32)
    codec = ZfpCompressor(16)
    y = codec.decompress(codec.compress(x))
    assert np.abs(x - y).max() < 0.01


def test_denormal_inputs_survive():
    x = np.full(16, 1e-42, dtype=np.float32)
    codec = ZfpCompressor(16)
    y = codec.decompress(codec.compress(x))
    assert np.all(np.isfinite(y))
    assert np.abs(x - y).max() <= codec.max_abs_error_bound(x)


def test_float64_roundtrip():
    x = np.sin(np.linspace(0, 20, 997))
    codec = ZfpCompressor(16)
    comp = codec.compress(x)
    y = codec.decompress(comp)
    assert y.dtype == np.float64
    assert np.abs(x - y).max() < 1e-2
    assert comp.ratio == pytest.approx(4.0, rel=0.02)


def test_negative_values_symmetric():
    """Negabinary truncation is not exactly odd-symmetric, but both
    polarities must stay inside the codec's error bound."""
    x = np.linspace(-5, 5, 2000, dtype=np.float32)
    codec = ZfpCompressor(16)
    bound = codec.max_abs_error_bound(x)
    y = codec.decompress(codec.compress(x))
    ny = codec.decompress(codec.compress(-x))
    assert np.abs(x - y).max() <= bound
    assert np.abs(x + ny).max() <= bound
    assert np.allclose(y, -ny, atol=2 * bound)


# -- validation --------------------------------------------------------------------

def test_nan_rejected():
    with pytest.raises(CompressionError, match="finite"):
        ZfpCompressor(8).compress(np.array([1.0, np.nan], dtype=np.float32))


def test_inf_rejected():
    with pytest.raises(CompressionError, match="finite"):
        ZfpCompressor(8).compress(np.array([np.inf], dtype=np.float32))


@pytest.mark.parametrize("rate", [0, 1, 2, 65])
def test_invalid_rate(rate):
    with pytest.raises(CompressionError):
        ZfpCompressor(rate)


def test_rate_above_width_rejected(rng):
    codec = ZfpCompressor(48)  # fine for f64
    with pytest.raises(CompressionError):
        codec.compress(rng.standard_normal(8).astype(np.float32))


def test_empty_array():
    codec = ZfpCompressor(8)
    comp = codec.compress(np.empty(0, dtype=np.float32))
    assert comp.nbytes == 0
    assert codec.decompress(comp).size == 0


def test_header_param_roundtrip(rng):
    """Receiver with a different default rate must use the payload's."""
    x = rng.standard_normal(512).astype(np.float32)
    comp = ZfpCompressor(8).compress(x)
    y = ZfpCompressor(16).decompress(comp)
    assert y.size == x.size
    assert np.abs(x - y).max() <= ZfpCompressor(8).max_abs_error_bound(x)


def test_truncated_payload_rejected(rng):
    x = rng.standard_normal(512).astype(np.float32)
    comp = ZfpCompressor(8).compress(x)
    comp.payload = comp.payload[:10]
    with pytest.raises(CompressionError):
        ZfpCompressor(8).decompress(comp)


# -- property-based ---------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    data=st.lists(
        st.floats(min_value=-1.0e18, max_value=1.0e18, allow_nan=False,
                  allow_infinity=False,
                  allow_subnormal=False).map(np.float32),
        min_size=1, max_size=200,
    ),
    rate=st.sampled_from([4, 8, 16, 24, 32]),
)
def test_property_error_bound_and_size(data, rate):
    x = np.array(data, dtype=np.float32)
    codec = ZfpCompressor(rate)
    comp = codec.compress(x)
    assert comp.nbytes == codec.expected_compressed_bytes(x.size, 4)
    y = codec.decompress(comp)
    assert y.shape == x.shape
    assert np.abs(x - y).max() <= codec.max_abs_error_bound(x)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=500), st.sampled_from([8, 16]))
def test_property_idempotent_recompression(n, rate):
    """Compressing an already-decompressed signal must not drift much
    further (energy stays bounded)."""
    rng = np.random.default_rng(n)
    x = np.cumsum(rng.standard_normal(n)).astype(np.float32)
    codec = ZfpCompressor(rate)
    y1 = codec.decompress(codec.compress(x))
    y2 = codec.decompress(codec.compress(y1))
    bound = codec.max_abs_error_bound(x)
    assert np.abs(y2 - y1).max() <= 2 * bound + 1e-12
