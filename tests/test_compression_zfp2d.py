"""ZFP 2-D mode tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import ZfpCompressor, get_compressor
from repro.compression.zfp2d import Zfp2dCompressor, plan_bit_allocation_2d
from repro.errors import CompressionError


def smooth_field(rows, cols, seed=0):
    x, y = np.meshgrid(np.linspace(0, 5, cols), np.linspace(0, 3, rows))
    rng = np.random.default_rng(seed)
    a, b = rng.uniform(0.5, 2.0, 2)
    return (np.sin(a * x) * np.cos(b * y)).astype(np.float32)


@pytest.mark.parametrize("rate", [1, 2, 4, 8, 16, 32])
def test_allocation_budget(rate):
    kept = plan_bit_allocation_2d(rate)
    assert kept.sum() == 16 * rate - 12
    assert (kept >= 0).all() and (kept <= 32).all()


def test_allocation_favours_low_sequency():
    kept = plan_bit_allocation_2d(8)
    grid = kept.reshape(4, 4)
    assert grid[0, 0] == kept.max()     # DC gets the most bits
    assert grid[3, 3] == kept.min()     # highest sequency the least


@pytest.mark.parametrize("shape", [(4, 4), (5, 7), (16, 16), (127, 101), (1, 1)])
@pytest.mark.parametrize("rate", [4, 8, 16])
def test_roundtrip_shapes(shape, rate):
    img = smooth_field(*shape)
    codec = Zfp2dCompressor(rate)
    out = codec.decompress(codec.compress(img))
    assert out.shape == img.shape
    assert np.isfinite(out).all()


@pytest.mark.parametrize("rate", [4, 8, 16])
def test_2d_beats_1d_on_smooth_fields(rate):
    """The point of the 2-D mode: lower error at equal rate."""
    img = smooth_field(128, 96, seed=3)
    c2 = Zfp2dCompressor(rate)
    err2 = np.abs(c2.decompress(c2.compress(img)) - img).max()
    c1 = ZfpCompressor(rate)
    flat = c1.decompress(c1.compress(img.reshape(-1))).reshape(img.shape)
    err1 = np.abs(flat - img).max()
    assert err2 < err1 / 2


def test_fixed_rate_size():
    img = smooth_field(64, 64)
    comp = Zfp2dCompressor(8).compress(img)
    # 16x16 blocks x 16 values x 8 bits = exactly nbytes/4
    assert comp.nbytes == 64 * 64 * 8 // 8


def test_padding_edges_accurate():
    img = smooth_field(9, 6)  # heavy padding (to 12x8)
    codec = Zfp2dCompressor(16)
    out = codec.decompress(codec.compress(img))
    assert np.abs(out - img).max() < 1e-2


def test_zero_field_exact():
    z = np.zeros((8, 8), dtype=np.float32)
    codec = Zfp2dCompressor(8)
    assert np.array_equal(codec.decompress(codec.compress(z)), z)


def test_validation():
    codec = Zfp2dCompressor(8)
    with pytest.raises(CompressionError):
        codec.compress(np.zeros(16, dtype=np.float32))      # 1-D
    with pytest.raises(CompressionError):
        codec.compress(np.zeros((4, 4), dtype=np.float64))  # f64
    with pytest.raises(CompressionError):
        codec.compress(np.full((4, 4), np.nan, dtype=np.float32))
    with pytest.raises(CompressionError):
        Zfp2dCompressor(0)


def test_truncated_payload():
    codec = Zfp2dCompressor(8)
    comp = codec.compress(smooth_field(16, 16))
    comp.payload = comp.payload[:4]
    with pytest.raises(CompressionError):
        codec.decompress(comp)


def test_registry():
    codec = get_compressor("zfp2d", rate=4)
    assert codec.rate == 4


@settings(max_examples=15, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=40),
    cols=st.integers(min_value=1, max_value=40),
    rate=st.sampled_from([4, 8, 16]),
    seed=st.integers(min_value=0, max_value=20),
)
def test_property_shape_and_finite(rows, cols, rate, seed):
    rng = np.random.default_rng(seed)
    img = rng.uniform(-100, 100, size=(rows, cols)).astype(np.float32)
    codec = Zfp2dCompressor(rate)
    out = codec.decompress(codec.compress(img))
    assert out.shape == img.shape
    assert np.isfinite(out).all()
    # Rough fixed-rate sanity: at rate 4 on white noise only a bit
    # plane or two survives, and the inverse lifting transform can
    # overshoot the input range (~2.5x max observed over a dense
    # sweep), so bound at 4x — still catches sign/exponent breakage.
    assert np.abs(out - img).max() <= np.abs(img).max() * 4 + 1e-6
