"""Adaptive policy (future-work feature) unit tests."""

import numpy as np
import pytest

from repro.core import CompressionConfig
from repro.core.adaptive import AdaptivePolicy
from repro.utils.units import GBps, MiB

from tests.conftest import smooth_f32


def test_bucketing():
    assert AdaptivePolicy.bucket_of(1) == 0
    assert AdaptivePolicy.bucket_of(1024) == 10
    assert AdaptivePolicy.bucket_of(1025) == 11
    assert AdaptivePolicy.bucket_of(1 << 20) == 20


def test_explores_until_min_samples():
    p = AdaptivePolicy(min_samples=3)
    assert p.should_compress(1 * MiB, GBps(100))  # would clearly lose, but explore
    p.record(1 * MiB, ratio=1.1, t_compr=1e-3, t_decompr=1e-3)
    p.record(1 * MiB, ratio=1.1, t_compr=1e-3, t_decompr=1e-3)
    assert p.should_compress(1 * MiB, GBps(100))
    p.record(1 * MiB, ratio=1.1, t_compr=1e-3, t_decompr=1e-3)
    # Now informed: 1 MiB over 100 GB/s is ~10us raw; compression costs
    # ~2ms — must decline.
    assert not p.should_compress(1 * MiB, GBps(100))


def test_accepts_wins_on_slow_link():
    p = AdaptivePolicy(min_samples=1)
    # Big ratio, cheap kernels, slow link: a clear win.
    p.record(8 * MiB, ratio=10.0, t_compr=50e-6, t_decompr=50e-6)
    assert p.should_compress(8 * MiB, GBps(6.8))


def test_declines_marginal_under_hysteresis():
    p = AdaptivePolicy(min_samples=1, hysteresis=1.5)
    # Ratio 2 on a link where kernels eat most of the gain.
    nbytes = 8 * MiB
    bw = GBps(12.5)
    t_raw = nbytes / bw
    p.record(nbytes, ratio=2.0, t_compr=t_raw * 0.24, t_decompr=t_raw * 0.24)
    # compressed: 0.5 t_raw + 0.48 t_raw = 0.98 t_raw -> <1.5x speedup
    assert not p.should_compress(nbytes, bw)


def test_ewma_adapts_to_data_change():
    p = AdaptivePolicy(min_samples=1, alpha=0.5)
    p.record(1 * MiB, ratio=30.0, t_compr=10e-6, t_decompr=10e-6)
    assert p.stats(1 * MiB).ratio == pytest.approx(30.0)
    for _ in range(8):
        p.record(1 * MiB, ratio=1.0, t_compr=10e-6, t_decompr=10e-6)
    assert p.stats(1 * MiB).ratio < 1.5


def test_zero_bandwidth_defaults_to_configured():
    p = AdaptivePolicy(min_samples=0)
    assert p.should_compress(1024, 0.0)


def test_snapshot():
    p = AdaptivePolicy()
    p.record(100, 2.0, 1e-6, 1e-6)
    snap = p.snapshot()
    assert len(snap) == 1
    assert list(snap.values())[0].samples == 1


def test_adaptive_config_enables_policy():
    from repro.core.engine import CompressionEngine
    from repro.gpu.device import Device
    from repro.gpu.spec import V100
    from repro.sim import Simulator

    sim = Simulator()
    eng = CompressionEngine(sim, Device(sim, V100, 0),
                            CompressionConfig.mpc_opt().with_(adaptive=True))
    assert eng.adaptive_policy is not None
    eng2 = CompressionEngine(sim, Device(sim, V100, 1), CompressionConfig.mpc_opt())
    assert eng2.adaptive_policy is None


def test_adaptive_end_to_end_skips_losing_compression(two_node_cluster):
    """On NVLink-fast links with incompressible data the adaptive
    engine should learn to stop compressing (paper Sec IX)."""
    rng = np.random.default_rng(5)
    data = rng.integers(0, 1 << 32, 500_000, dtype=np.uint64).astype(np.uint32).view(np.float32)

    def rank_fn(comm):
        for _ in range(6):
            if comm.rank == 0:
                yield from comm.send(data, 1)
            else:
                yield from comm.recv(0)
        return comm.now

    cfg_fixed = CompressionConfig.mpc_opt()
    cfg_adaptive = cfg_fixed.with_(adaptive=True)
    fixed = two_node_cluster.run(rank_fn, config=cfg_fixed)
    adaptive = two_node_cluster.run(rank_fn, config=cfg_adaptive)
    assert adaptive.elapsed <= fixed.elapsed
