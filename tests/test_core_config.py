"""Unit tests for CompressionConfig and the partition tuner."""

import pytest

from repro.compression.perfmodel import MPC_V100
from repro.core import CompressionConfig, partitions_for_message
from repro.core.tuning import sweep_partitions
from repro.errors import ConfigError
from repro.utils.units import KiB, MiB


def test_disabled():
    cfg = CompressionConfig.disabled()
    assert not cfg.enabled
    assert cfg.label == "Baseline (No compression)"


def test_naive_mpc_flags():
    cfg = CompressionConfig.naive_mpc()
    assert cfg.enabled and cfg.algorithm == "mpc"
    assert not cfg.use_buffer_pool
    assert not cfg.use_gdrcopy
    assert cfg.partitions == 1
    assert "naive" in cfg.label


def test_naive_zfp_flags():
    cfg = CompressionConfig.naive_zfp(rate=8)
    assert cfg.zfp_rate == 8
    assert not cfg.cache_device_attrs
    assert "naive" in cfg.label and "rate:8" in cfg.label


def test_mpc_opt_flags():
    cfg = CompressionConfig.mpc_opt()
    assert cfg.use_buffer_pool and cfg.use_gdrcopy
    assert cfg.partitions == 0  # auto
    assert cfg.label == "MPC-OPT"


def test_zfp_opt_flags():
    cfg = CompressionConfig.zfp_opt(rate=4)
    assert cfg.cache_device_attrs
    assert cfg.label == "ZFP-OPT (rate:4)"


def test_with_override():
    cfg = CompressionConfig.mpc_opt().with_(partitions=4, threshold=1 * MiB)
    assert cfg.partitions == 4 and cfg.threshold == 1 * MiB


def test_validation():
    with pytest.raises(ConfigError):
        CompressionConfig(algorithm="lz4")
    with pytest.raises(ConfigError):
        CompressionConfig(threshold=-1)
    with pytest.raises(ConfigError):
        CompressionConfig(partitions=-1)
    with pytest.raises(ConfigError):
        CompressionConfig(zfp_rate=2)
    with pytest.raises(ConfigError):
        CompressionConfig(mpc_dimensionality=0)


def test_frozen():
    cfg = CompressionConfig.disabled()
    with pytest.raises(Exception):
        cfg.enabled = True


# -- tuning ------------------------------------------------------------------

def test_partition_schedule_monotone():
    sizes = [64 * KiB, 256 * KiB, 1 * MiB, 2 * MiB, 8 * MiB, 32 * MiB, 128 * MiB]
    parts = [partitions_for_message(s) for s in sizes]
    assert parts == sorted(parts)
    assert parts[0] == 1
    assert parts[-1] >= 8


def test_partition_schedule_boundaries():
    assert partitions_for_message(128 * KiB) == 1
    assert partitions_for_message(128 * KiB + 1) == 2
    assert partitions_for_message(4 * MiB) == 4
    assert partitions_for_message(4 * MiB + 1) == 8


def test_sweep_prefers_more_partitions_for_big_messages():
    sweep = sweep_partitions(MPC_V100, 32 * MiB, 80)
    assert sweep[8] < sweep[1]


def test_sweep_prefers_fewer_partitions_for_small_messages():
    sweep = sweep_partitions(MPC_V100, 64 * KiB, 80)
    assert sweep[1] < sweep[16]
