"""Unit tests for the compression engine pipelines."""

import numpy as np
import pytest

from repro.core import CompressionConfig, CompressionEngine
from repro.gpu.device import Device
from repro.gpu.spec import V100
from repro.sim import Simulator, Tracer
from repro.utils.units import KiB, MiB, us

from tests.conftest import smooth_f32


def make_engine(config):
    sim = Simulator()
    Tracer(sim)
    dev = Device(sim, V100, 0)
    return sim, dev, CompressionEngine(sim, dev, config)


def run_send(engine, data):
    return engine.sim.run_process(engine.sender_prepare(data))


def full_roundtrip(config, data):
    """sender_prepare -> receiver_prepare -> receiver_complete."""
    sim, dev, eng_s = make_engine(config)
    eng_r = CompressionEngine(sim, dev, config)

    def proc():
        plan = yield from eng_s.sender_prepare(data)
        res = yield from eng_r.receiver_prepare(plan.header)
        out = yield from eng_r.receiver_complete(plan.header, plan.payload, res)
        yield from eng_s.sender_release(plan)
        return plan, out

    plan, out = sim.run_process(proc())
    return sim, plan, out


# -- compressibility gate -------------------------------------------------------

def test_below_threshold_not_compressed():
    cfg = CompressionConfig.mpc_opt(threshold=1 * MiB)
    sim, dev, eng = make_engine(cfg)
    data = smooth_f32(1000)  # 4 KB
    plan = run_send(eng, data)
    assert not plan.compressed
    assert plan.wire_nbytes == data.nbytes


def test_above_threshold_compressed():
    cfg = CompressionConfig.mpc_opt(threshold=64 * KiB)
    sim, dev, eng = make_engine(cfg)
    data = smooth_f32(100_000)
    plan = run_send(eng, data)
    assert plan.compressed
    assert plan.wire_nbytes < data.nbytes


def test_disabled_never_compresses():
    cfg = CompressionConfig.disabled()
    sim, dev, eng = make_engine(cfg)
    plan = run_send(eng, smooth_f32(1_000_000))
    assert not plan.compressed


def test_unsupported_dtype_passthrough():
    cfg = CompressionConfig.mpc_opt(threshold=0)
    sim, dev, eng = make_engine(cfg)
    data = np.arange(100_000, dtype=np.int64)
    plan = run_send(eng, data)
    assert not plan.compressed


def test_incompressible_falls_back_to_raw(rng):
    """Random data expands under MPC; the engine must ship it raw."""
    cfg = CompressionConfig.mpc_opt(threshold=64 * KiB)
    sim, dev, eng = make_engine(cfg)
    data = rng.integers(0, 1 << 32, 100_000, dtype=np.uint64).astype(np.uint32).view(np.float32)
    plan = run_send(eng, data)
    assert not plan.compressed
    assert plan.wire_nbytes == data.nbytes


# -- MPC roundtrips -------------------------------------------------------------

@pytest.mark.parametrize("partitions", [1, 2, 4, 8])
def test_mpc_roundtrip_partitions(partitions):
    cfg = CompressionConfig.mpc_opt(threshold=0, partitions=partitions)
    data = smooth_f32(200_000)
    sim, plan, out = full_roundtrip(cfg, data)
    assert plan.header.n_partitions == partitions
    assert np.array_equal(out.view(np.uint32), data.view(np.uint32))


def test_mpc_auto_partitions_follow_schedule():
    cfg = CompressionConfig.mpc_opt(threshold=0, partitions=0)
    data = smooth_f32((2 * MiB) // 4)  # 2 MiB -> 4 partitions
    sim, plan, out = full_roundtrip(cfg, data)
    assert plan.header.n_partitions == 4


def test_mpc_dimensionality_in_header():
    cfg = CompressionConfig.mpc_opt(threshold=0).with_(mpc_dimensionality=3)
    data = smooth_f32(100_000)
    sim, plan, out = full_roundtrip(cfg, data)
    assert plan.header.param == 3
    assert np.array_equal(out, data)


def test_naive_mpc_roundtrip():
    cfg = CompressionConfig.naive_mpc(threshold=0)
    data = smooth_f32(100_000)
    sim, plan, out = full_roundtrip(cfg, data)
    assert np.array_equal(out, data)


# -- ZFP roundtrips --------------------------------------------------------------

@pytest.mark.parametrize("rate", [4, 8, 16])
def test_zfp_roundtrip(rate):
    cfg = CompressionConfig.zfp_opt(rate=rate, threshold=0)
    data = smooth_f32(100_000)
    sim, plan, out = full_roundtrip(cfg, data)
    assert plan.compressed
    assert plan.wire_nbytes == pytest.approx(data.nbytes * rate / 32, rel=0.01)
    from repro.compression import ZfpCompressor

    assert np.abs(out - data).max() <= ZfpCompressor(rate).max_abs_error_bound(data)


def test_zfp_float64_roundtrip():
    cfg = CompressionConfig.zfp_opt(rate=16, threshold=0)
    data = np.sin(np.linspace(0, 10, 50_000))
    sim, plan, out = full_roundtrip(cfg, data)
    assert out.dtype == np.float64
    assert np.abs(out - data).max() < 1e-2


# -- cost accounting ---------------------------------------------------------------

def test_naive_mpc_pays_cudamalloc():
    data = smooth_f32(100_000)
    _, _, eng_naive = make_engine(CompressionConfig.naive_mpc(threshold=0))
    plan = run_send(eng_naive, data)
    t_naive = eng_naive.sim.now
    malloc_time = eng_naive.sim.tracer.total("malloc")
    assert malloc_time > us(150)  # comp buffer + d_off


def test_opt_mpc_avoids_cudamalloc():
    data = smooth_f32(100_000)
    _, _, eng = make_engine(CompressionConfig.mpc_opt(threshold=0))
    run_send(eng, data)
    assert eng.sim.tracer.total("malloc") == 0.0


def test_opt_faster_than_naive():
    data = smooth_f32(500_000)
    _, _, naive = make_engine(CompressionConfig.naive_mpc(threshold=0))
    run_send(naive, data)
    t_naive = naive.sim.now
    _, _, opt = make_engine(CompressionConfig.mpc_opt(threshold=0))
    run_send(opt, data)
    assert opt.sim.now < t_naive / 2  # paper: up to 4x


def test_gdrcopy_vs_memcpy_for_size():
    data = smooth_f32(100_000)
    _, _, naive = make_engine(CompressionConfig.naive_mpc(threshold=0))
    run_send(naive, data)
    naive_copies = naive.sim.tracer.total("data_copy")
    _, _, opt = make_engine(CompressionConfig.mpc_opt(threshold=0))
    run_send(opt, data)
    opt_copies = opt.sim.tracer.total("data_copy")
    assert naive_copies >= us(19)
    assert opt_copies < us(5)


def test_naive_zfp_pays_device_props():
    data = smooth_f32(100_000)
    _, _, eng = make_engine(CompressionConfig.naive_zfp(threshold=0))
    run_send(eng, data)
    assert eng.sim.tracer.total("get_max_grid_dims") == pytest.approx(us(1840))


def test_opt_zfp_caches_attrs():
    data = smooth_f32(100_000)
    _, _, eng = make_engine(CompressionConfig.zfp_opt(threshold=0))

    def proc():
        yield from eng.sender_prepare(data)
        yield from eng.sender_prepare(data)

    eng.sim.run_process(proc())
    # one ~1us query, second send free
    assert eng.sim.tracer.total("get_max_grid_dims") <= us(1.5)


def test_zfp_no_size_copy():
    """ZFP's predictable size means no D2H size retrieval at all."""
    data = smooth_f32(100_000)
    _, _, eng = make_engine(CompressionConfig.zfp_opt(threshold=0))
    run_send(eng, data)
    assert eng.sim.tracer.total("data_copy") == 0.0


def test_partitioned_kernels_overlap():
    """With 4 partitions the busy window is much shorter than the
    summed kernel time."""
    data = smooth_f32(2_000_000)
    _, _, eng = make_engine(CompressionConfig.mpc_opt(threshold=0, partitions=4))
    run_send(eng, data)
    tr = eng.sim.tracer
    assert tr.busy("compression_kernel") < 0.6 * tr.total("compression_kernel")


def test_partitioned_combine_charged():
    data = smooth_f32(2_000_000)
    _, _, eng = make_engine(CompressionConfig.mpc_opt(threshold=0, partitions=4))
    run_send(eng, data)
    assert eng.sim.tracer.total("combine") > 0


def test_single_partition_no_combine():
    data = smooth_f32(100_000)
    _, _, eng = make_engine(CompressionConfig.mpc_opt(threshold=0, partitions=1))
    run_send(eng, data)
    assert eng.sim.tracer.total("combine") == 0


def test_sender_release_returns_buffers():
    cfg = CompressionConfig.mpc_opt(threshold=0)
    sim, dev, eng = make_engine(cfg)
    data = smooth_f32(100_000)

    def proc():
        plan = yield from eng.sender_prepare(data)
        yield from eng.sender_release(plan)
        return plan

    plan = sim.run_process(proc())
    assert plan.resources == []


def test_receiver_prepare_uncompressed_no_resources():
    cfg = CompressionConfig.disabled()
    sim, dev, eng = make_engine(cfg)
    from repro.core.header import CompressionHeader

    def proc():
        res = yield from eng.receiver_prepare(CompressionHeader.uncompressed(100))
        return res

    assert sim.run_process(proc()) == []


def test_payload_partition_size_mismatch_rejected():
    cfg = CompressionConfig.mpc_opt(threshold=0)
    data = smooth_f32(100_000)
    sim, dev, eng = make_engine(cfg)
    plan = run_send(eng, data)

    def proc():
        res = yield from eng.receiver_prepare(plan.header)
        out = yield from eng.receiver_complete(
            plan.header, plan.payload[:-8], res
        )
        return out

    from repro.errors import CompressionError

    with pytest.raises(CompressionError):
        sim.run_process(proc())
