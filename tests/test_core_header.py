"""Unit + property tests for the RTS-piggybacked compression header."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.header import CompressionHeader
from repro.errors import HeaderError


def test_uncompressed_header():
    h = CompressionHeader.uncompressed(4096)
    assert not h.compressed
    assert h.wire_bytes == 4096
    assert h.original_nbytes == 4096


def test_for_message():
    h = CompressionHeader.for_message("mpc", np.float32, 1000, 3, (800, 810))
    assert h.compressed
    assert h.algorithm == "mpc"
    assert h.n_partitions == 2
    assert h.wire_bytes == 1610
    assert h.original_nbytes == 4000
    assert h.codec_params() == {"dimensionality": 3}


def test_zfp_codec_params():
    h = CompressionHeader.for_message("zfp", np.float32, 10, 8, (20,))
    assert h.codec_params() == {"rate": 8}


def test_null_codec_params():
    assert CompressionHeader.uncompressed(10).codec_params() == {}


def test_pack_unpack_roundtrip():
    h = CompressionHeader.for_message("zfp", np.float64, 123456, 16, (1000, 2000, 3000))
    h2 = CompressionHeader.unpack(h.pack())
    assert h2 == h


def test_pack_unpack_uncompressed():
    h = CompressionHeader.uncompressed(999)
    assert CompressionHeader.unpack(h.pack()) == h


def test_header_nbytes_matches_pack():
    h = CompressionHeader.for_message("mpc", np.float32, 10, 1, (1, 2, 3, 4))
    assert len(h.pack()) == h.nbytes


def test_header_small():
    """The header must stay small enough to piggyback on the RTS."""
    h = CompressionHeader.for_message("mpc", np.float32, 1 << 23, 1, tuple(range(8)))
    assert h.nbytes < 128


def test_bad_magic():
    raw = bytearray(CompressionHeader.uncompressed(10).pack())
    raw[0] = 0x00
    with pytest.raises(HeaderError, match="magic"):
        CompressionHeader.unpack(bytes(raw))


def test_truncated():
    raw = CompressionHeader.for_message("mpc", np.float32, 10, 1, (1, 2)).pack()
    with pytest.raises(HeaderError, match="truncated"):
        CompressionHeader.unpack(raw[:8])
    with pytest.raises(HeaderError, match="truncated"):
        CompressionHeader.unpack(raw[:-2])


def test_unknown_algorithm_pack():
    h = CompressionHeader(compressed=True, algorithm="zstd", n_elements=1,
                          partition_sizes=(4,))
    with pytest.raises(HeaderError):
        h.pack()


def test_too_many_partitions():
    h = CompressionHeader(compressed=True, algorithm="mpc", n_elements=1,
                          partition_sizes=tuple(range(70000)))
    with pytest.raises(HeaderError):
        h.pack()


@settings(max_examples=50, deadline=None)
@given(
    algorithm=st.sampled_from(["null", "mpc", "zfp", "fpc"]),
    dtype=st.sampled_from(["float32", "float64"]),
    n=st.integers(min_value=0, max_value=1 << 48),
    param=st.integers(min_value=0, max_value=1 << 31),
    sizes=st.lists(st.integers(min_value=0, max_value=1 << 31), min_size=1, max_size=16),
)
def test_property_header_roundtrip(algorithm, dtype, n, param, sizes):
    h = CompressionHeader(
        compressed=True, algorithm=algorithm, dtype_name=dtype,
        n_elements=n, param=param, partition_sizes=tuple(sizes),
    )
    assert CompressionHeader.unpack(h.pack()) == h
