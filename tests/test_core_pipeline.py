"""Pipelined rendezvous (extension) tests."""

import numpy as np
import pytest

from repro.core import CompressionConfig
from repro.core.header import CompressionHeader
from repro.mpi.cluster import Cluster
from repro.network.presets import machine_preset
from repro.utils.units import MiB

from tests.conftest import smooth_f32


def _pingpong(comm, data):
    if comm.rank == 0:
        yield from comm.send(data, 1)
        back = yield from comm.recv(1)
        return back
    got = yield from comm.recv(0)
    yield from comm.send(got, 0)
    return None


@pytest.fixture
def fdr_pair():
    return Cluster(machine_preset("frontera-liquid"), nodes=2, gpus_per_node=1)


def test_header_pipelined_flag_roundtrip():
    h = CompressionHeader.for_message("zfp", np.float32, 100, 8, (50, 50),
                                      pipelined=True)
    h2 = CompressionHeader.unpack(h.pack())
    assert h2.pipelined
    h3 = CompressionHeader.for_message("zfp", np.float32, 100, 8, (100,))
    assert not CompressionHeader.unpack(h3.pack()).pipelined


def test_pipelined_mpc_lossless(fdr_pair):
    data = smooth_f32((4 * MiB) // 4)
    cfg = CompressionConfig.mpc_opt(partitions=4).with_(pipeline=True)
    res = fdr_pair.run(_pingpong, config=cfg, args=(data,))
    assert np.array_equal(res.values[0].view(np.uint32), data.view(np.uint32))


def test_pipelined_zfp_error_bounded(fdr_pair):
    from repro.compression import ZfpCompressor

    data = smooth_f32((4 * MiB) // 4)
    cfg = CompressionConfig.zfp_opt(16).with_(pipeline=True, partitions=4)
    res = fdr_pair.run(_pingpong, config=cfg, args=(data,))
    bound = ZfpCompressor(16).max_abs_error_bound(data)
    assert np.abs(res.values[0] - data).max() <= bound


def test_pipelined_faster_than_combined(fdr_pair):
    data = smooth_f32((8 * MiB) // 4)
    combined = CompressionConfig.mpc_opt(partitions=8)
    piped = combined.with_(pipeline=True)
    t_combined = fdr_pair.run(_pingpong, config=combined, args=(data,)).elapsed
    t_piped = fdr_pair.run(_pingpong, config=piped, args=(data,)).elapsed
    assert t_piped < t_combined


def test_pipelined_overlaps_kernel_and_wire(fdr_pair):
    """With pipelining, compression kernels and wire time overlap —
    total elapsed must be less than their sum."""
    data = smooth_f32((8 * MiB) // 4)
    cfg = CompressionConfig.mpc_opt(partitions=8).with_(pipeline=True)
    res = fdr_pair.run(_pingpong, config=cfg, args=(data,))
    tr = res.tracer
    serial_sum = (tr.busy("compression_kernel") + tr.busy("network")
                  + tr.busy("decompression_kernel"))
    assert res.elapsed < serial_sum


def test_pipelined_small_message_falls_back(fdr_pair):
    """Below the partition threshold the pipelined path must defer to
    the ordinary rendezvous (single partition)."""
    data = smooth_f32(80_000)  # 320 KB -> 1 partition
    cfg = CompressionConfig.mpc_opt().with_(pipeline=True)
    res = fdr_pair.run(_pingpong, config=cfg, args=(data,))
    assert np.array_equal(res.values[0], data)


def test_pipelined_incompressible_falls_back(fdr_pair, rng):
    data = rng.integers(0, 1 << 32, (2 * MiB) // 4,
                        dtype=np.uint64).astype(np.uint32).view(np.float32)
    cfg = CompressionConfig.mpc_opt(partitions=4).with_(pipeline=True)
    res = fdr_pair.run(_pingpong, config=cfg, args=(data,))
    assert np.array_equal(res.values[0].view(np.uint32), data.view(np.uint32))


def test_pipelined_deterministic(fdr_pair):
    data = smooth_f32((4 * MiB) // 4)
    cfg = CompressionConfig.zfp_opt(8).with_(pipeline=True, partitions=4)
    e1 = fdr_pair.run(_pingpong, config=cfg, args=(data,)).elapsed
    e2 = fdr_pair.run(_pingpong, config=cfg, args=(data,)).elapsed
    assert e1 == e2


def test_pipelined_in_collective(fdr_pair):
    """Pipelining under a bcast tree delivers exact data everywhere."""
    cluster = Cluster(machine_preset("frontera-liquid"), nodes=4, gpus_per_node=1)
    data = smooth_f32((2 * MiB) // 4)
    cfg = CompressionConfig.mpc_opt(partitions=4).with_(pipeline=True)

    def rank_fn(comm):
        payload = data if comm.rank == 0 else None
        out = yield from comm.bcast(payload, root=0)
        return np.array_equal(np.asarray(out), data)

    res = cluster.run(rank_fn, config=cfg)
    assert all(res.values)
