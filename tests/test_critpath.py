"""Critical-path attribution: the tiling invariant, Fig 10-style
percentages from the span tree alone, and the explain report.

The load-bearing invariant (ISSUE 3): on a 2-rank rendezvous send the
critical-path segment durations sum exactly to the end-to-end simulated
latency, every segment maps to a real span in the trace, and the
segments tile the makespan with no gaps or overlaps.
"""

import math

import pytest

from repro.analysis import CritPathAnalyzer
from repro.analysis.critpath import ATTRIBUTION_BUCKETS
from repro.core import CompressionConfig
from repro.mpi.cluster import Cluster
from repro.network.presets import machine_preset
from repro.omb.payload import make_payload


def run_pt2pt(config=None, nbytes=1 << 20, payload="omb"):
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)
    data = make_payload(payload, nbytes, seed=3)

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, 1, tag=5)
            return None
        got = yield from comm.recv(0, tag=5)
        return got.nbytes

    return cluster.run(rank_fn,
                       config=config or CompressionConfig.mpc_opt())


@pytest.fixture(scope="module")
def mpc_message():
    res = run_pt2pt()
    msgs = CritPathAnalyzer(res.tracer).messages()
    assert len(msgs) == 1
    return res, msgs[0]


def test_segments_sum_to_latency(mpc_message):
    _, msg = mpc_message
    assert msg.latency > 0
    total = sum(s.duration for s in msg.segments)
    assert math.isclose(total, msg.latency, rel_tol=1e-12, abs_tol=1e-15)
    # service + wait is the same partition, differently keyed
    assert math.isclose(msg.service_time() + msg.wait_time(), msg.latency,
                        rel_tol=1e-12, abs_tol=1e-15)


def test_segments_tile_without_gaps(mpc_message):
    _, msg = mpc_message
    cur = msg.t_start
    for seg in msg.segments:
        assert seg.t_start == cur  # contiguous, in order
        assert seg.t_end > seg.t_start
        cur = seg.t_end
    assert cur == msg.t_end


def test_every_segment_maps_to_real_span(mpc_message):
    res, msg = mpc_message
    real = {id(r) for r in res.tracer.records}
    by_id = {r.span_id: r for r in res.tracer.records}
    for seg in msg.segments:
        assert id(seg.span) in real
        assert by_id[seg.span.span_id] is seg.span
        if seg.kind == "service":
            # a service slice lies within its span's interval
            assert seg.t_start >= seg.span.t_start - 1e-15
            assert seg.t_end <= seg.span.t_end + 1e-15


def test_message_endpoints_and_sizes(mpc_message):
    _, msg = mpc_message
    assert (msg.src, msg.dst) == (0, 1)
    assert msg.nbytes == 1 << 20
    # mpc-opt on the omb payload compresses heavily
    assert msg.wire_nbytes is not None and msg.wire_nbytes < msg.nbytes // 4


def test_fig10_attribution_from_span_tree(mpc_message):
    """mpc-opt pt2pt: kernels dominate, wire is small, everything sums
    to 100% — the Fig 10 shape recovered from the trace alone."""
    _, msg = mpc_message
    attr = msg.attribution()
    assert set(attr) == {"compression", "communication", "decompression",
                         "other"}
    assert math.isclose(sum(attr.values()), 100.0, rel_tol=1e-9)
    assert all(v >= 0 for v in attr.values())
    # omb compresses ~30x, so kernel time dominates the wire leg
    assert attr["compression"] > attr["communication"]
    assert attr["decompression"] > attr["communication"]
    assert attr["compression"] + attr["decompression"] > 50


def test_baseline_attribution_is_communication_heavy():
    res = run_pt2pt(config=CompressionConfig.disabled())
    msgs = CritPathAnalyzer(res.tracer).messages()
    attr = msgs[0].attribution()
    assert attr["compression"] == 0.0
    assert attr["decompression"] == 0.0
    assert attr["communication"] > 50


def test_by_resource_lanes(mpc_message):
    _, msg = mpc_message
    lanes = msg.by_resource()
    assert any(lane.startswith("stream") for lane in lanes)
    assert any(lane.startswith("link:") for lane in lanes)
    total = sum(v["service"] + v["wait"] for v in lanes.values())
    assert math.isclose(total, msg.latency, rel_tol=1e-12)


def test_by_step_covers_pipeline(mpc_message):
    _, msg = mpc_message
    steps = msg.by_step()
    for expected in ("sender_prepare", "wire_transfer", "receiver_complete"):
        assert expected in steps and steps[expected] > 0
    assert math.isclose(sum(steps.values()), msg.latency, rel_tol=1e-12)


def test_aggregate_attribution_weighted(mpc_message):
    res, msg = mpc_message
    agg = CritPathAnalyzer(res.tracer).aggregate_attribution()
    # single message: aggregate == the message's own attribution
    for k, v in msg.attribution().items():
        assert math.isclose(agg[k], v, rel_tol=1e-12)


def test_explain_report(mpc_message):
    res, msg = mpc_message
    text = CritPathAnalyzer(res.tracer).explain(n=3)
    assert "seq 1: rank 0 -> 1" in text
    assert "critical-path attribution:" in text
    assert "compression_kernel" in text
    assert "wire_transfer" in text


def test_explain_empty_for_eager_sends():
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)
    data = make_payload("omb", 1 << 10)  # far below the eager threshold

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, 1, tag=5)
            return None
        got = yield from comm.recv(0, tag=5)
        return got.nbytes

    res = cluster.run(rank_fn, config=CompressionConfig.disabled())
    an = CritPathAnalyzer(res.tracer)
    assert an.messages() == []
    assert "no rendezvous messages" in an.explain()


def test_collectives_paths():
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=2)
    data = make_payload("omb", 512 * 1024, seed=3)

    def rank_fn(comm):
        out = yield from comm.allgather(data)
        return len(out)

    res = cluster.run(rank_fn, config=CompressionConfig.mpc_opt())
    paths = CritPathAnalyzer(res.tracer).collectives()
    assert len(paths) == 4  # one per rank
    for p in paths:
        assert p.label == "allgather"
        total = sum(s.duration for s in p.segments)
        assert math.isclose(total, p.latency, rel_tol=1e-12)


def test_determinism_across_runs():
    def fingerprint():
        res = run_pt2pt()
        msg = CritPathAnalyzer(res.tracer).messages()[0]
        return (msg.latency, msg.attribution(),
                tuple((s.t_start, s.t_end, s.kind, s.span.span_id, s.step)
                      for s in msg.segments))

    assert fingerprint() == fingerprint()


def test_bucket_map_is_total():
    # every bucket value is one of the four report buckets
    assert set(ATTRIBUTION_BUCKETS.values()) <= {
        "compression", "communication", "decompression", "other"}
