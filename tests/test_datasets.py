"""Table III dataset generators: statistics must match the paper."""

import numpy as np
import pytest

from repro.compression import MpcCompressor, ZfpCompressor
from repro.datasets import DATASETS, dataset_names, generate
from repro.datasets.catalog import get_spec
from repro.datasets.synthetic import bitwalk
from repro.errors import ConfigError


def test_catalog_has_eight():
    assert len(DATASETS) == 8
    assert dataset_names()[0] == "msg_bt"
    assert "num_plasma" in dataset_names()


def test_get_spec_unknown():
    with pytest.raises(ConfigError):
        get_spec("msg_nothing")


def test_generate_unknown():
    with pytest.raises(ConfigError):
        generate("nope")


def test_bitwalk_finite_positive(rng):
    x = bitwalk(100_000, 20, rng)
    assert x.dtype == np.float32
    assert np.isfinite(x).all()
    assert (x > 0).all()


def test_bitwalk_residual_width(rng):
    """Residual magnitudes stay near 2^step_bits."""
    x = bitwalk(50_000, 12, rng)
    w = x.view(np.uint32).astype(np.int64)
    res = np.abs(np.diff(w))
    assert np.median(res) < (1 << 13)


def test_bitwalk_bad_step(rng):
    with pytest.raises(ConfigError):
        bitwalk(10, 0, rng)
    with pytest.raises(ConfigError):
        bitwalk(10, 30, rng)


def test_bitwalk_empty(rng):
    assert bitwalk(0, 10, rng).size == 0


def test_generate_scale_controls_size():
    small = generate("msg_sp", scale=0.01)
    big = generate("msg_sp", scale=0.05)
    assert big.size == pytest.approx(5 * small.size, rel=0.05)


def test_generate_bad_scale():
    with pytest.raises(ConfigError):
        generate("msg_sp", scale=0)


def test_generate_deterministic_per_seed():
    a = generate("msg_lu", scale=0.01, seed=3)
    b = generate("msg_lu", scale=0.01, seed=3)
    c = generate("msg_lu", scale=0.01, seed=4)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_all_datasets_finite():
    for name in dataset_names():
        x = generate(name, scale=0.01)
        assert np.isfinite(x).all(), name
        assert x.dtype == np.float32


@pytest.mark.parametrize("name", dataset_names())
def test_mpc_ratio_matches_table3(name):
    """Measured MPC ratio within 12% of the paper's Table III."""
    spec = get_spec(name)
    x = generate(name, scale=0.04, seed=1)
    best = max(
        (MpcCompressor(d).compress(x).ratio for d in range(1, 5)),
    )
    assert best == pytest.approx(spec.cr_mpc, rel=0.12), name


@pytest.mark.parametrize("name", dataset_names())
def test_unique_fraction_matches_table3(name):
    spec = get_spec(name)
    x = generate(name, scale=0.04, seed=1)
    uniq_pct = 100.0 * len(np.unique(x)) / x.size
    assert uniq_pct == pytest.approx(spec.unique_pct, abs=4.0), name


def test_sppm_is_outlier_high_ratio():
    """msg_sppm's ratio ~9 is the outlier driving the paper's best
    collective results (Fig 11: 57% on msg_sppm)."""
    ratios = {
        name: MpcCompressor(1).compress(generate(name, scale=0.03)).ratio
        for name in dataset_names()
    }
    assert ratios["msg_sppm"] > 3 * max(v for k, v in ratios.items() if k != "msg_sppm")


def test_sp_prefers_dimensionality_two():
    x = generate("msg_sp", scale=0.05)
    assert MpcCompressor(2).compress(x).ratio > MpcCompressor(1).compress(x).ratio


def test_zfp_on_datasets_fixed_ratio():
    for name in ("msg_bt", "msg_sppm"):
        x = generate(name, scale=0.02)
        assert ZfpCompressor(16).compress(x).ratio == pytest.approx(2.0, rel=0.01)


def test_zfp_handles_all_datasets():
    for name in dataset_names():
        x = generate(name, scale=0.01)
        y = ZfpCompressor(16).decompress(ZfpCompressor(16).compress(x))
        assert y.shape == x.shape
        assert np.isfinite(y).all()
