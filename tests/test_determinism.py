"""End-to-end determinism: same seed, same structured trace.

The simulator is advertised as deterministic (heap order with
insertion-order tie-break, seeded payloads, no wall-clock anywhere).
These tests pin that down at the observability layer: two identical
runs must produce *bit-identical* structured traces, exported JSON and
metrics — not merely the same final latency.
"""

import json

import numpy as np

from repro.analysis import to_chrome_trace
from repro.core import CompressionConfig
from repro.mpi.cluster import Cluster
from repro.network.presets import machine_preset
from repro.omb.payload import make_payload


def run_pt2pt(seed=7):
    """Figure 9-style pt2pt: one rendezvous MPC-OPT send across nodes."""
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)
    data = make_payload("omb", 1 << 20, seed=seed)

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, 1, tag=9)
            return None
        got = yield from comm.recv(0, tag=9)
        return np.asarray(got).nbytes

    return cluster.run(rank_fn, config=CompressionConfig.mpc_opt())


def run_collective(seed=7):
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=2)
    data = make_payload("omb", 512 * 1024, seed=seed)

    def rank_fn(comm):
        out = yield from comm.allgather(data)
        return len(out)

    return cluster.run(rank_fn, config=CompressionConfig.mpc_opt())


def _fingerprint(res):
    doc = to_chrome_trace(res.tracer, elapsed=res.elapsed)
    return (
        tuple(r.key() for r in res.tracer.records),
        json.dumps(doc, sort_keys=True),
        res.tracer.metrics.as_dict(),
        res.elapsed,
    )


def test_pt2pt_trace_deterministic():
    a, b = _fingerprint(run_pt2pt()), _fingerprint(run_pt2pt())
    assert a == b


def test_collective_trace_deterministic():
    a, b = _fingerprint(run_collective()), _fingerprint(run_collective())
    assert a == b


def test_different_seed_changes_payload_not_structure():
    """Different payload contents change compressed sizes (and so
    timings) but never the span skeleton: same names, same nesting."""

    def skeleton(res):
        by_id = {r.span_id: r for r in res.tracer.records}
        return sorted(
            (r.category, r.label, r.rank, r.track,
             by_id[r.parent_id].label if r.parent_id in by_id else None)
            for r in res.tracer.records
        )

    assert skeleton(run_pt2pt(seed=1)) == skeleton(run_pt2pt(seed=2))
