"""End-to-end determinism: same seed, same structured trace.

The simulator is advertised as deterministic (heap order with
insertion-order tie-break, seeded payloads, no wall-clock anywhere).
These tests pin that down at the observability layer: two identical
runs must produce *bit-identical* structured traces, exported JSON and
metrics — not merely the same final latency.
"""

import json

import numpy as np

from repro.analysis import to_chrome_trace
from repro.core import CompressionConfig
from repro.mpi.cluster import Cluster
from repro.network.presets import machine_preset
from repro.omb.payload import make_payload


def run_pt2pt(seed=7, faults=None):
    """Figure 9-style pt2pt: one rendezvous MPC-OPT send across nodes."""
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)
    data = make_payload("omb", 1 << 20, seed=seed)

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, 1, tag=9)
            return None
        got = yield from comm.recv(0, tag=9)
        return np.asarray(got).nbytes

    return cluster.run(rank_fn, config=CompressionConfig.mpc_opt(),
                       faults=faults)


def run_collective(seed=7):
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=2)
    data = make_payload("omb", 512 * 1024, seed=seed)

    def rank_fn(comm):
        out = yield from comm.allgather(data)
        return len(out)

    return cluster.run(rank_fn, config=CompressionConfig.mpc_opt())


def _fingerprint(res):
    doc = to_chrome_trace(res.tracer, elapsed=res.elapsed)
    return (
        tuple(r.key() for r in res.tracer.records),
        json.dumps(doc, sort_keys=True),
        res.tracer.metrics.as_dict(),
        res.elapsed,
    )


def test_pt2pt_trace_deterministic():
    a, b = _fingerprint(run_pt2pt()), _fingerprint(run_pt2pt())
    assert a == b


def test_collective_trace_deterministic():
    a, b = _fingerprint(run_collective()), _fingerprint(run_collective())
    assert a == b


def test_zero_rate_fault_plan_is_trace_identical():
    """Installing the fault plane with a zero-rate plan must not perturb
    the run at all: same spans, same exported JSON, same metrics, same
    elapsed time as no fault plane whatsoever."""
    from repro.faults import FaultPlan

    without = _fingerprint(run_pt2pt())
    with_zero = _fingerprint(run_pt2pt(faults=FaultPlan(seed=3)))
    assert without == with_zero


def test_faulted_run_trace_deterministic():
    """Same seed + same fault plan => bit-identical fault sequence,
    recovery actions, and Chrome-trace export."""
    from repro.faults import FaultPlan

    plan = FaultPlan(seed=11, corrupt_rate=0.3, drop_rate=0.1,
                     compress_fail_rate=0.2)
    a, b = _fingerprint(run_pt2pt(faults=plan)), _fingerprint(run_pt2pt(faults=plan))
    assert a == b
    # the plan actually fired (this is a chaotic run, not a no-op)
    injected = sum(v for k, v in a[2]["counters"].items()
                   if k.startswith("faults.injected"))
    assert injected > 0


def test_different_fault_seed_changes_fault_sequence():
    from repro.faults import FaultPlan

    a = _fingerprint(run_pt2pt(faults=FaultPlan(seed=1, corrupt_rate=0.5)))
    b = _fingerprint(run_pt2pt(faults=FaultPlan(seed=2, corrupt_rate=0.5)))
    assert a != b


def test_different_seed_changes_payload_not_structure():
    """Different payload contents change compressed sizes (and so
    timings) but never the span skeleton: same names, same nesting."""

    def skeleton(res):
        by_id = {r.span_id: r for r in res.tracer.records}
        return sorted(
            (r.category, r.label, r.rank, r.track,
             by_id[r.parent_id].label if r.parent_id in by_id else None)
            for r in res.tracer.records
        )

    assert skeleton(run_pt2pt(seed=1)) == skeleton(run_pt2pt(seed=2))
