"""Smoke tests: every example script must run cleanly."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_examples_exist():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "awp_weak_scaling.py", "dask_transpose_sum.py",
            "dataset_compression_survey.py", "adaptive_policy_demo.py", "collectives_on_datasets.py"} <= names


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Baseline (No compression)" in out
    assert "MPC-OPT" in out


def test_dataset_survey():
    out = run_example("dataset_compression_survey.py")
    assert "msg_sppm" in out and "CR-MPC" in out


def test_adaptive_demo():
    out = run_example("adaptive_policy_demo.py")
    assert "adaptive" in out.lower()


@pytest.mark.slow
def test_awp_example():
    out = run_example("awp_weak_scaling.py", timeout=600)
    assert "GFLOP/s" in out
    assert "bit-identical to baseline: True" in out


@pytest.mark.slow
def test_dask_example():
    out = run_example("dask_transpose_sum.py")
    assert "speedup" in out


@pytest.mark.slow
def test_collectives_example():
    out = run_example("collectives_on_datasets.py")
    assert "msg_sppm" in out and "MPC gain" in out
