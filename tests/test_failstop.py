"""Fail-stop rank failures: detection, ULFM-style recovery, C/R.

Covers the whole tentpole stack: RankFailure spec validation, the
zero-failure trace-identity invariant, peer-death detection in both
point-to-point and collective waits, communicator revocation + shrink
with deterministic agreement, application checkpoint/restart, the
chaos harness's bit-exact shrunk-reference comparison, and the
liveness trace-sanitizer pass.
"""

import numpy as np
import pytest

from repro.core import CompressionConfig
from repro.errors import (
    CollectiveAbortedError,
    ConfigError,
    MpiError,
    RankFailedError,
)
from repro.faults import FaultPlan
from repro.faults.chaos import run_chaos, run_chaos_sweep
from repro.faults.plan import RankFailure
from repro.mpi.cluster import Cluster
from repro.mpi.failstop import KilledRank
from repro.network.presets import machine_preset

MPC = CompressionConfig.mpc_opt()
DIS = CompressionConfig.disabled()


def _cluster(nodes=2, ppn=2):
    return Cluster(machine_preset("longhorn"), nodes=nodes, gpus_per_node=ppn)


def _kill(rank, at=None, sends=None):
    return FaultPlan(seed=1, rank_failures=(
        RankFailure(rank=rank, at_time=at, after_sends=sends),))


# ---------------------------------------------------------------------------
# spec validation + describe (satellite: FaultPlan rank-failure fields)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kwargs", [
    dict(rank=-1, at_time=1.0),
    dict(rank=0),                                  # no trigger at all
    dict(rank=0, at_time=1.0, after_sends=3),      # both triggers
    dict(rank=0, at_time=-1.0),
    dict(rank=0, at_time=float("inf")),
    dict(rank=0, after_sends=0),
    dict(rank=0, at_time=1.0, incarnation=-1),
])
def test_rank_failure_validation(kwargs):
    with pytest.raises(ConfigError):
        RankFailure(**kwargs)


def test_rank_failure_plan_predicates_and_describe():
    plan = _kill(2, at=1e-4)
    assert plan.has_rank_failures and not plan.is_zero
    assert "kill(rank=2, at_time=0.0001)" in plan.describe()
    sends = _kill(1, sends=5)
    assert "after_sends=5" in sends.describe()
    empty = FaultPlan(seed=1, rank_failures=())
    assert not empty.has_rank_failures and empty.is_zero


def test_duplicate_rank_failures_rejected():
    with pytest.raises(ConfigError):
        FaultPlan(rank_failures=(RankFailure(rank=1, at_time=1e-4),
                                 RankFailure(rank=1, after_sends=2)))


# ---------------------------------------------------------------------------
# zero-failure invariant: rank_failures=() perturbs nothing
# ---------------------------------------------------------------------------

def _trace_fingerprint(res):
    return [(r.t_start, r.t_end, r.category, r.label, r.rank, r.track)
            for r in res.tracer.records]


def test_zero_rank_failures_trace_identical():
    def rank_fn(comm):
        data = np.full(1 << 14, float(comm.rank + 1), dtype=np.float32)
        out = yield from comm.allreduce(data)
        return float(out[0])

    cluster = _cluster()
    base = cluster.run(rank_fn, config=MPC,
                       faults=FaultPlan(seed=1))
    with_field = cluster.run(rank_fn, config=MPC,
                             faults=FaultPlan(seed=1, rank_failures=()))
    assert _trace_fingerprint(base) == _trace_fingerprint(with_field)
    assert base.values == with_field.values
    assert with_field.killed == ()


# ---------------------------------------------------------------------------
# detection: waits against a dead peer raise RankFailedError
# ---------------------------------------------------------------------------

def test_p2p_recv_from_dead_rank_raises_with_context():
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)

    def rank_fn(comm):
        if comm.rank == 0:
            data = np.arange(1 << 16, dtype=np.float32)
            yield from comm.send(data, 1, tag=0)   # completes pre-kill
            got = yield from comm.recv(1, tag=1)   # rank 1 dies first
            return got
        got = yield from comm.recv(0, tag=0)
        yield comm.sim.timeout(1.0)                # killed long before
        yield from comm.send(got, 0, tag=1)
        return None

    with pytest.raises(RankFailedError) as exc:
        cluster.run(rank_fn, config=MPC, faults=_kill(1, at=2e-4))
    err = exc.value
    assert err.failed_rank == 1
    assert err.incarnation == 0
    # the sender delivered before dying, so rank 0 heard from it
    assert err.last_heard is not None
    assert "last heard" in str(err) or "last heard" in err.diagnostic


def test_send_count_bomb_kills_on_nth_send():
    cluster = _cluster()

    def rank_fn(comm):
        data = np.full(1 << 12, 1.0, dtype=np.float32)
        for _ in range(8):
            data = yield from comm.allreduce(data)
        return float(data[0])

    res = None
    try:
        res = cluster.run(rank_fn, config=DIS, faults=_kill(2, sends=3))
    except CollectiveAbortedError:
        return  # a survivor surfaced the abort: detection worked
    assert res is not None
    assert [k.rank for k in res.killed] == [2]


# ---------------------------------------------------------------------------
# ULFM: revoke, agree, shrink
# ---------------------------------------------------------------------------

def test_collective_abort_then_shrink_recovers():
    cluster = _cluster()

    def rank_fn(comm):
        data = np.full(1 << 14, float(comm.grank + 1), dtype=np.float32)
        try:
            for _ in range(6):
                out = yield from comm.allreduce(data)
        except CollectiveAbortedError as exc:
            assert 2 in exc.failed_ranks
            # the communicator stays revoked: instant abort on re-entry
            with pytest.raises(CollectiveAbortedError):
                yield from comm.allreduce(data)
            small = yield from comm.shrink()
            assert small.size == 3
            assert small.group == (0, 1, 3)
            assert small.grank == comm.grank
            out = yield from small.allreduce(
                np.full(1 << 14, float(small.grank + 1), dtype=np.float32))
            return ("recovered", float(out[0]), small.rank)
        return ("clean", float(out[0]), comm.rank)

    res = cluster.run(rank_fn, config=DIS, faults=_kill(2, at=3e-5))
    survivors = [v for v in res.values if isinstance(v, tuple)]
    recovered = [v for v in survivors if v[0] == "recovered"]
    assert recovered, "no survivor went through shrink"
    # every recovered rank agreed on the same shrunk result: 1+2+4
    assert all(v[1] == 7.0 for v in recovered)
    # local ranks in the shrunk comm are dense over the survivors
    assert sorted(v[2] for v in recovered) == list(range(len(recovered)))
    assert [k.rank for k in res.killed] == [2]


def test_shrink_agreement_survives_leader_death():
    """Killing rank 0 — the agreement leader and bcast root — must
    still produce one consistent shrunk communicator on the others."""
    cluster = _cluster()

    def rank_fn(comm):
        data = np.full(1 << 13, 1.0, dtype=np.float32)
        try:
            for _ in range(6):
                data = yield from comm.bcast(
                    data if comm.rank == 0 else None, root=0)
        except CollectiveAbortedError:
            small = yield from comm.shrink()
            return tuple(small.group)
        return None

    res = cluster.run(rank_fn, config=DIS, faults=_kill(0, at=3e-5))
    groups = {v for v in res.values if isinstance(v, tuple)}
    assert groups == {(1, 2, 3)}


def test_subset_excludes_self_raises():
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)

    def rank_fn(comm):
        if comm.rank == 0:
            with pytest.raises(MpiError):
                comm.subset((1,))
        yield comm.sim.timeout(0.0)
        return None

    cluster.run(rank_fn, config=DIS)


# ---------------------------------------------------------------------------
# checkpoint / restart
# ---------------------------------------------------------------------------

def test_checkpoint_store_keeps_every_step():
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)

    def rank_fn(comm):
        assert comm.should_checkpoint(1) and comm.should_checkpoint(3)
        assert not comm.should_checkpoint(0)
        for step in range(4):
            comm.checkpoint(step, np.full(4, float(step)))
        yield comm.sim.timeout(0.0)
        latest = comm.restore()
        specific = comm.restore(step=1)
        missing = comm.restore(step=9)
        return (latest[0], float(latest[1][0]), specific[0], missing)

    res = cluster.run(rank_fn, config=DIS, checkpoint_every=2)
    for latest_step, latest_val, specific_step, missing in res.values:
        assert (latest_step, latest_val) == (3, 3.0)
        assert specific_step == 1
        assert missing is None


def test_restore_empty_returns_none():
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)

    def rank_fn(comm):
        yield comm.sim.timeout(0.0)
        assert not comm.should_checkpoint(5)   # checkpoint_every=0
        return comm.restore()

    res = cluster.run(rank_fn, config=DIS)
    assert res.values == [None, None]


# ---------------------------------------------------------------------------
# chaos harness: bit-exact recovery vs fault-free shrunk reference
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("workload,spec", [
    ("allreduce", dict(rank=2, at_time=5e-5)),
    ("allreduce", dict(rank=1, after_sends=9)),
    ("bcast", dict(rank=0, at_time=6e-5)),        # kill the root/leader
    ("awp", dict(rank=3, at_time=8e-5)),          # kill a leaf
])
def test_chaos_failstop_bit_exact(workload, spec):
    plan = FaultPlan(seed=1, rank_failures=(RankFailure(**spec),))
    rep = run_chaos(workload=workload, plan=plan, sizes=(1 << 16,),
                    iterations=6, checkpoint_every=2)
    assert rep.ok, rep.summary()
    r = rep.results[0]
    assert r.killed == (spec["rank"],)
    assert r.recoveries >= 1
    assert r.mismatches == 0 and r.messages == 3
    assert "shrink+rollback" in rep.summary()


def test_chaos_failstop_rejects_pt2pt():
    with pytest.raises(ValueError):
        run_chaos(workload="pt2pt", plan=_kill(1, at=1e-4))


def test_chaos_seed_sweep_aggregates():
    plan = _kill(2, at=5e-5)
    sweep = run_chaos_sweep(n_seeds=2, base_seed=1, plan=plan,
                            workload="allreduce", sizes=(1 << 15,),
                            iterations=4, checkpoint_every=2)
    assert sweep.ok
    assert sweep.seeds == (1, 2)
    text = sweep.summary()
    assert "2 seeds" in text and "rank kills" in text
    assert "recovered bit-exactly" in text


# ---------------------------------------------------------------------------
# liveness sanitizer pass on kill traces
# ---------------------------------------------------------------------------

def test_kill_trace_passes_liveness_check():
    from repro.check.sanitize import TraceSanitizer

    cluster = _cluster()

    def rank_fn(comm):
        data = np.full(1 << 14, 1.0, dtype=np.float32)
        try:
            for _ in range(4):
                data = yield from comm.allreduce(data)
        except CollectiveAbortedError:
            small = yield from comm.shrink()
            data = yield from small.allreduce(data)
        return float(data[0])

    res = cluster.run(rank_fn, config=MPC, faults=_kill(2, at=3e-5))
    assert [k.rank for k in res.killed] == [2]
    violations = TraceSanitizer.from_tracer(res.tracer).check_liveness()
    assert violations == []
    # the kill itself is on the trace, pinned to the victim
    kills = [r for r in res.tracer.records if r.label == "rank_kill"]
    assert len(kills) == 1 and kills[0].rank == 2


def test_liveness_fixture_detected():
    from repro.check import fixtures
    from repro.check.sanitize import TraceSanitizer

    v = TraceSanitizer(fixtures.bad_liveness_records()).check_liveness()
    assert len(v) == 1
    assert v[0].check == "liveness" and "after its fail-stop kill" in v[0].message


def test_killed_sentinel_shape():
    k = KilledRank(3, 1, 2.5e-4)
    assert (k.rank, k.incarnation, k.killed_at) == (3, 1, 2.5e-4)
    assert "rank=3" in repr(k)
