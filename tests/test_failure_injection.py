"""Failure injection: corrupted payloads and headers through the full
stack must fail loudly, never deliver silently-wrong data."""

import numpy as np
import pytest

from repro.compression import MpcCompressor, ZfpCompressor, get_compressor
from repro.compression.base import CompressedData
from repro.core import CompressionConfig
from repro.core.header import CompressionHeader
from repro.errors import CompressionError, HeaderError, ReproError

from tests.conftest import smooth_f32


def test_mpc_bitflip_in_bitmap_detected_or_lossless_mismatch(smooth_signal):
    """Flipping a bitmap bit changes the nonzero-word count, which the
    size consistency check must catch."""
    codec = MpcCompressor(1)
    comp = codec.compress(smooth_signal)
    payload = comp.payload.copy()
    payload[0] ^= 0x80
    comp.payload = payload
    with pytest.raises(CompressionError):
        codec.decompress(comp)


def test_mpc_wrong_element_count_detected(smooth_signal):
    codec = MpcCompressor(1)
    comp = codec.compress(smooth_signal)
    bad = CompressedData(
        algorithm="mpc", payload=comp.payload,
        n_elements=comp.n_elements + 1000, dtype=comp.dtype,
        params=comp.params,
    )
    with pytest.raises(CompressionError):
        codec.decompress(bad)


def test_zfp_payload_swap_wrong_rate_fails_or_bounded():
    """Decoding with the wrong rate must fail on size, not produce a
    silently plausible array of the wrong length."""
    x = smooth_f32(1000)
    comp8 = ZfpCompressor(8).compress(x)
    bad = CompressedData(
        algorithm="zfp", payload=comp8.payload, n_elements=1000,
        dtype=np.float32, params={"rate": 16},
    )
    with pytest.raises(CompressionError):
        ZfpCompressor(16).decompress(bad)


def test_header_garbage_bytes():
    with pytest.raises(HeaderError):
        CompressionHeader.unpack(b"\x00" * 32)
    with pytest.raises(HeaderError):
        CompressionHeader.unpack(b"")


def test_header_unknown_algorithm_code():
    raw = bytearray(CompressionHeader.uncompressed(8).pack())
    raw[2] = 99  # algorithm code
    with pytest.raises(HeaderError):
        CompressionHeader.unpack(bytes(raw))


def test_engine_rejects_partition_sum_mismatch():
    """A header whose partition sizes disagree with the payload length
    must be rejected by the receiver pipeline."""
    from repro.core.engine import CompressionEngine
    from repro.gpu.device import Device
    from repro.gpu.spec import V100
    from repro.sim import Simulator

    sim = Simulator()
    eng = CompressionEngine(sim, Device(sim, V100, 0),
                            CompressionConfig.mpc_opt(threshold=0))
    data = smooth_f32(100_000)
    plan = sim.run_process(eng.sender_prepare(data))
    tampered = CompressionHeader.for_message(
        "mpc", np.float32, plan.header.n_elements, 1,
        tuple(s + 8 for s in plan.header.partition_sizes),
    )

    def proc():
        res = yield from eng.receiver_prepare(tampered)
        out = yield from eng.receiver_complete(tampered, plan.payload, res)
        return out

    with pytest.raises(ReproError):
        sim.run_process(proc())


def test_sz_corrupted_outlier_section(rng):
    codec = get_compressor("sz", error_bound=1e-4)
    x = (rng.standard_normal(500) * 1e7).astype(np.float32)  # many outliers
    comp = codec.compress(x)
    comp.payload = comp.payload[:-4]  # drop one outlier value
    with pytest.raises(CompressionError):
        codec.decompress(comp)


def test_gfc_code_nibble_corruption(rng):
    codec = get_compressor("gfc")
    comp = codec.compress(np.cumsum(rng.standard_normal(100)))
    payload = comp.payload.copy()
    payload[0] = 0xFF  # lz code 15 > 8
    comp.payload = payload
    with pytest.raises(CompressionError):
        codec.decompress(comp)


def test_lossless_roundtrip_after_recovery(smooth_signal):
    """A failed decompress must not poison codec state: the next good
    message decodes fine."""
    codec = MpcCompressor(1)
    comp = codec.compress(smooth_signal)
    broken = CompressedData(
        algorithm="mpc", payload=comp.payload[:10], n_elements=comp.n_elements,
        dtype=comp.dtype, params=comp.params,
    )
    with pytest.raises(CompressionError):
        codec.decompress(broken)
    out = codec.decompress(comp)
    assert np.array_equal(out.view(np.uint32), smooth_signal.view(np.uint32))
