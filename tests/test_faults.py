"""Fault-injection plane + resilient rendezvous.

Covers the chaos stack end to end: plan/spec validation, injector
determinism, per-fault-class recovery (bit-exact delivery plus the
spans/counters that make recovery auditable), retry exhaustion,
circuit-breaker mechanics, timeout/deadlock diagnostics, and the
CR >= 1 uncompressed-fallback property across every registered codec.
"""

import numpy as np
import pytest

from repro.core import CompressionConfig
from repro.errors import (
    ConfigError,
    DeadlockError,
    IntegrityError,
    RendezvousTimeoutError,
)
from repro.faults import FaultInjector, FaultPlan
from repro.faults.chaos import run_chaos
from repro.gpu.pool import BufferPool, SizeClassBufferPool
from repro.gpu.spec import DeviceSpec
from repro.mpi.cluster import Cluster
from repro.mpi.resilience import CircuitBreaker, ResilienceConfig
from repro.network.presets import machine_preset
from repro.omb.payload import make_payload
from repro.sim import Simulator

MPC = CompressionConfig.mpc_opt()


def run_pt2pt(config=MPC, faults=None, resilience=None, payloads=None,
              nbytes=1 << 18, iterations=3, max_time=120.0):
    """Rank 0 streams distinct payloads to rank 1; returns
    (ClusterResult, sent payloads) — ``res.values[1]`` is the list of
    received arrays."""
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)
    if payloads is None:
        payloads = [make_payload("omb", nbytes, seed=i)
                    for i in range(iterations)]

    def rank_fn(comm):
        if comm.rank == 0:
            for i, p in enumerate(payloads):
                yield from comm.send(p, 1, tag=i)
            return None
        got = []
        for i in range(len(payloads)):
            r = yield from comm.recv(0, tag=i)
            got.append(r)
        return got

    res = cluster.run(rank_fn, config=config, faults=faults,
                      resilience=resilience, max_time=max_time)
    return res, payloads


def assert_bit_exact(res, payloads):
    received = res.values[1]
    assert len(received) == len(payloads)
    for sent, got in zip(payloads, received):
        assert got.dtype == sent.dtype and got.shape == sent.shape
        assert got.tobytes() == sent.tobytes()  # NaN-safe bit equality


# ---------------------------------------------------------------------------
# plan + spec validation (satellite: config validation -> ConfigError)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kwargs", [
    dict(corrupt_rate=1.5),
    dict(drop_rate=-0.1),
    dict(decompress_corrupt_rate=2.0),
    dict(degrade_factor=0.5),
    dict(flap_down=1.0),                    # flap_down without a period
    dict(flap_period=1.0, flap_down=1.0),   # down >= period: never recovers
    dict(active_after=-1.0),
    dict(active_after=2.0, active_until=1.0),
])
def test_fault_plan_validation(kwargs):
    with pytest.raises(ConfigError):
        FaultPlan(**kwargs)


def test_fault_plan_predicates():
    assert FaultPlan().is_zero
    assert not FaultPlan().can_lose_data
    plan = FaultPlan(seed=3, corrupt_rate=0.1)
    assert not plan.is_zero and not plan.can_lose_data
    assert FaultPlan(drop_rate=0.01).can_lose_data
    assert "corrupt_rate=0.1" in plan.describe()
    assert "seed=3" in plan.describe()


_SPEC_OK = dict(sm_count=80, mem_bandwidth=9e11, mem_capacity=16 << 30)


@pytest.mark.parametrize("kwargs", [
    dict(sm_count=0),
    dict(mem_bandwidth=0.0),
    dict(mem_capacity=-1),
    dict(memcpy_bandwidth=-2.0),
    dict(kernel_launch=-1e-6),
])
def test_device_spec_validation(kwargs):
    with pytest.raises(ConfigError):
        DeviceSpec(name="bad", **{**_SPEC_OK, **kwargs})


def test_pool_validation():
    sim = Simulator()
    from repro.gpu.device import Device

    dev = Device(sim, DeviceSpec(name="ok", **_SPEC_OK), 0)
    with pytest.raises(ConfigError):
        BufferPool(dev, buffer_bytes=0)
    with pytest.raises(ConfigError):
        SizeClassBufferPool(dev, min_bytes=0)


def test_resilience_config_validation():
    with pytest.raises(ConfigError):
        ResilienceConfig(max_retries=-1)
    with pytest.raises(ConfigError):
        ResilienceConfig(jitter=1.5)
    with pytest.raises(ConfigError):
        ResilienceConfig(handshake_timeout=0.0)
    with pytest.raises(ConfigError):
        ResilienceConfig(backoff_factor=0.5)


def test_resilience_for_plan_arms_timeouts_only_on_loss():
    assert ResilienceConfig.for_plan(None).data_timeout is None
    assert ResilienceConfig.for_plan(FaultPlan(corrupt_rate=0.5)).data_timeout is None
    armed = ResilienceConfig.for_plan(FaultPlan(drop_rate=0.1))
    assert armed.data_timeout is not None and armed.handshake_timeout is not None


# ---------------------------------------------------------------------------
# injector determinism
# ---------------------------------------------------------------------------

def _decision_sequence(seed):
    sim = Simulator()
    inj = FaultInjector(sim, FaultPlan(
        seed=seed, corrupt_rate=0.3, drop_rate=0.1, oom_rate=0.2,
        pool_fail_rate=0.15, compress_fail_rate=0.25))
    out = []
    for _ in range(300):
        out.append(inj.transfer_outcome(0, 1, 4096))
        out.append(inj.should_fail_malloc(0, 1024))
        out.append(inj.should_fail_pool(0, 1024))
        out.append(inj.should_fail_compress("mpc"))
    return out


def test_injector_same_seed_same_decisions():
    assert _decision_sequence(5) == _decision_sequence(5)


def test_injector_seed_changes_decisions():
    assert _decision_sequence(5) != _decision_sequence(6)


def test_injector_inactive_window_never_fires():
    sim = Simulator()
    inj = FaultInjector(sim, FaultPlan(
        seed=1, corrupt_rate=1.0, drop_rate=1.0, active_after=1e9))
    assert all(inj.transfer_outcome(0, 1, 64) == "ok" for _ in range(50))


def test_backoff_delay_deterministic_and_bounded():
    import random

    cfg = ResilienceConfig()
    a = [cfg.backoff_delay(i, random.Random(0)) for i in range(1, 9)]
    b = [cfg.backoff_delay(i, random.Random(0)) for i in range(1, 9)]
    assert a == b
    for attempt, d in enumerate(a, start=1):
        base = min(cfg.backoff_max,
                   cfg.backoff_base * cfg.backoff_factor ** (attempt - 1))
        assert base <= d <= base * (1 + cfg.jitter)


# ---------------------------------------------------------------------------
# recovery, per fault class: bit-exact delivery + audit trail
# ---------------------------------------------------------------------------

def _faults_total(res):
    return res.tracer.metrics.counter_total("faults.injected")


def test_recovers_from_wire_corruption():
    res, payloads = run_pt2pt(faults=FaultPlan(seed=2, corrupt_rate=0.4))
    assert_bit_exact(res, payloads)
    m = res.tracer.metrics
    assert m.counter("faults.injected", kind="corrupt") > 0
    # a flipped bit either breaks the decode outright or survives it and
    # trips the CRC check — both must end in a retransmission
    assert (m.counter_total("resilience.crc_mismatch")
            + m.counter_total("resilience.decode_error")) > 0
    assert m.counter_total("resilience.retransmit") > 0
    assert m.counter_total("resilience.recovered") > 0
    # recovery is visible on the faults track
    tracks = {r.track for r in res.tracer.records}
    assert "faults" in tracks


def test_recovers_from_payload_drop():
    res, payloads = run_pt2pt(faults=FaultPlan(seed=3, drop_rate=0.3))
    assert_bit_exact(res, payloads)
    m = res.tracer.metrics
    assert m.counter("faults.injected", kind="drop") > 0
    assert m.counter_total("resilience.data_timeout") > 0
    assert m.counter_total("resilience.retransmit") > 0


def test_recovers_from_transient_oom_and_pool_exhaustion():
    res, payloads = run_pt2pt(
        faults=FaultPlan(seed=4, oom_rate=0.3, pool_fail_rate=0.3))
    assert_bit_exact(res, payloads)
    assert _faults_total(res) > 0
    assert res.tracer.metrics.counter_total("resilience.retry") > 0


def test_recovers_from_compressor_failures():
    res, payloads = run_pt2pt(
        faults=FaultPlan(seed=5, compress_fail_rate=0.6))
    assert_bit_exact(res, payloads)
    m = res.tracer.metrics
    assert m.counter("faults.injected", kind="compress_fail") > 0
    assert m.counter_total("resilience.fallback") > 0


def test_recovers_from_decompress_corruption():
    res, payloads = run_pt2pt(
        faults=FaultPlan(seed=5, decompress_corrupt_rate=0.5))
    assert_bit_exact(res, payloads)
    m = res.tracer.metrics
    assert m.counter("faults.injected", kind="decompress_corrupt") > 0
    assert m.counter_total("resilience.crc_mismatch") > 0


def test_link_degradation_slows_but_delivers():
    clean, payloads = run_pt2pt(payloads=None)
    slow, _ = run_pt2pt(
        payloads=payloads,
        faults=FaultPlan(seed=7, degrade_rate=1.0, degrade_factor=8.0))
    assert_bit_exact(slow, payloads)
    assert slow.tracer.metrics.counter("faults.injected", kind="degrade") > 0
    assert slow.elapsed > clean.elapsed


def test_link_flapping_waits_out_outages():
    res, payloads = run_pt2pt(
        faults=FaultPlan(seed=8, flap_period=200e-6, flap_down=50e-6))
    assert_bit_exact(res, payloads)
    assert res.tracer.metrics.counter("faults.injected", kind="flap_wait") > 0


def test_retry_exhaustion_raises_integrity_error():
    # uncompressed wire payloads: corruption always surfaces as a CRC
    # mismatch (a compressed stream may instead break the decode, which
    # exhausts as RetryExhaustedError)
    with pytest.raises(IntegrityError) as exc:
        run_pt2pt(config=CompressionConfig.disabled(),
                  faults=FaultPlan(seed=9, corrupt_rate=1.0), iterations=1)
    assert "crc_mismatch" in str(exc.value)


def test_zero_retries_fails_fast_on_corruption():
    with pytest.raises(IntegrityError):
        run_pt2pt(config=CompressionConfig.disabled(),
                  faults=FaultPlan(seed=10, corrupt_rate=1.0), iterations=1,
                  resilience=ResilienceConfig(max_retries=0))


def test_baseline_uncompressed_also_recovers():
    res, payloads = run_pt2pt(
        config=CompressionConfig.disabled(),
        faults=FaultPlan(seed=11, corrupt_rate=0.4))
    assert_bit_exact(res, payloads)
    assert res.tracer.metrics.counter_total("resilience.retransmit") > 0


def test_pipelined_send_recovers_from_corruption():
    res, payloads = run_pt2pt(
        config=CompressionConfig.zfp_opt(8).with_(pipeline=True, partitions=4),
        faults=FaultPlan(seed=12, corrupt_rate=0.3))
    # lossy codec: compare against the clean run's delivery instead
    clean, _ = run_pt2pt(
        config=CompressionConfig.zfp_opt(8).with_(pipeline=True, partitions=4),
        payloads=payloads)
    for want, got in zip(clean.values[1], res.values[1]):
        assert np.array_equal(want, got)


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------

def test_breaker_state_machine():
    transitions = []
    br = CircuitBreaker(threshold=3, cooldown=1.0,
                        on_transition=lambda old, new, now: transitions.append((old, new)))
    assert br.allow(0.0)
    br.record_failure(0.0)
    br.record_failure(0.0)
    assert br.state == CircuitBreaker.CLOSED and br.allow(0.0)
    br.record_failure(0.0)                    # third strike
    assert br.state == CircuitBreaker.OPEN
    assert not br.allow(0.5)                  # still cooling down
    assert br.allow(1.5)                      # cooldown over -> trial
    assert br.state == CircuitBreaker.HALF_OPEN
    br.record_failure(1.5)                    # trial failed -> re-open
    assert br.state == CircuitBreaker.OPEN
    assert br.allow(3.0)
    br.record_success(3.0)                    # trial succeeded
    assert br.state == CircuitBreaker.CLOSED
    assert transitions == [
        ("closed", "open"), ("open", "half_open"), ("half_open", "open"),
        ("open", "half_open"), ("half_open", "closed"),
    ]


def test_breaker_disabled_with_zero_threshold():
    br = CircuitBreaker(threshold=0, cooldown=1.0)
    for _ in range(10):
        br.record_failure(0.0)
    assert br.state == CircuitBreaker.CLOSED and br.allow(0.0)


def test_breaker_half_open_retrip_restarts_cooldown():
    """A failed half-open trial re-opens with a *fresh* cool-down."""
    br = CircuitBreaker(threshold=2, cooldown=1.0)
    br.record_failure(0.0)
    br.record_failure(0.0)                    # trip at t=0
    assert not br.allow(0.5)
    assert br.allow(1.5)                      # half-open trial
    br.record_failure(1.5)                    # trial fails -> re-trip
    assert br.state == CircuitBreaker.OPEN
    assert not br.allow(2.0)                  # old cooldown would allow
    assert not br.allow(2.4)
    assert br.allow(2.6)                      # fresh cooldown from t=1.5
    assert br.state == CircuitBreaker.HALF_OPEN
    br.record_success(2.6)
    assert br.state == CircuitBreaker.CLOSED


def test_breaker_trip_vs_retrip_metrics():
    """Runtime's breaker transition hook counts first trips apart from
    half-open re-trips."""
    from repro.core.config import CompressionConfig
    from repro.gpu.device import Device
    from repro.mpi.cluster import Runtime
    from repro.network.topology import Topology
    from repro.sim import Tracer

    sim = Simulator()
    tracer = Tracer(sim)
    preset = machine_preset("longhorn")
    topology = Topology(sim, preset, 2, 1)
    devices = [Device(sim, preset.device, i) for i in range(2)]
    rt = Runtime(sim, topology, devices, CompressionConfig.disabled(),
                 resilience=ResilienceConfig(breaker_threshold=2,
                                             breaker_cooldown=1.0))
    br = rt.breaker_of(0, 1)
    br.record_failure(0.0)
    br.record_failure(0.0)                    # first trip
    br.allow(1.5)                             # half-open
    br.record_failure(1.5)                    # re-trip
    br.allow(3.0)                             # half-open again
    br.record_success(3.0)                    # close
    m = tracer.metrics
    assert m.counter("resilience.breaker_trips", kind="trip") == 1
    assert m.counter("resilience.breaker_trips", kind="retrip") == 1
    assert m.counter("resilience.breaker_transitions", state="open") == 2


def test_breaker_trips_under_persistent_compressor_failure():
    res, payloads = run_pt2pt(
        faults=FaultPlan(seed=13, compress_fail_rate=0.9),
        iterations=10)
    assert_bit_exact(res, payloads)
    m = res.tracer.metrics
    assert m.counter("resilience.breaker_transitions", state="open") > 0
    assert m.counter_total("resilience.breaker_veto") > 0
    labels = {r.label for r in res.tracer.records if r.category == "resilience"}
    assert "breaker_open" in labels


# ---------------------------------------------------------------------------
# timeout + deadlock diagnostics
# ---------------------------------------------------------------------------

def test_handshake_timeout_raises_with_diagnostic():
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)
    data = make_payload("omb", 1 << 18, seed=0)

    def sender_only(comm):
        if comm.rank == 0:
            yield from comm.send(data, 1, tag=0)
        else:
            yield comm.sim.timeout(1.0)  # never posts the recv
        return None

    with pytest.raises(RendezvousTimeoutError) as exc:
        cluster.run(sender_only, config=MPC,
                    resilience=ResilienceConfig(handshake_timeout=0.01))
    msg = str(exc.value)
    assert "CTS" in msg or "handshake" in msg
    assert "rank" in msg  # carries the matching-state dump
    # the dump is enriched with per-peer last-heard sim times: rank 1
    # received rank 0's RTS, so its lane shows when it last heard 0
    assert "last heard" in msg
    assert "outstanding" in msg


def test_deadlock_error_carries_matching_dump():
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.recv(1, tag=5)  # never satisfied
        return None

    with pytest.raises(DeadlockError) as exc:
        cluster.run(rank_fn, config=MPC)
    assert "posted recv" in str(exc.value)
    assert exc.value.diagnostic


# ---------------------------------------------------------------------------
# CR >= 1 uncompressed fallback: bit-exact for every registered codec
# (satellite 3)
# ---------------------------------------------------------------------------

def _incompressible(nbytes, dtype, seed, bits=True):
    """Incompressible payloads.  ``bits=True`` is uniform random *bit
    patterns* (defeats every lossless codec; may contain NaNs, which is
    why comparisons go through ``tobytes``); ``bits=False`` is white
    noise in [1, 2) — finite values for codecs that do arithmetic."""
    rng = np.random.default_rng(seed)
    if bits:
        return np.frombuffer(rng.bytes(nbytes), dtype=dtype).copy()
    n = nbytes // np.dtype(dtype).itemsize
    return (rng.random(n) + 1.0).astype(dtype)


@pytest.mark.parametrize("algorithm,dtype,kwargs,bits", [
    ("mpc", np.float32, {}, True),
    ("mpc", np.float64, {}, True),
    ("fpc", np.float64, {}, True),
    ("gfc", np.float64, {}, True),
    ("sz", np.float32, dict(sz_error_bound=1e-12), False),
    ("zfp", np.float32, dict(zfp_rate=32), False),  # rate == dtype bits -> CR 1
    ("null", np.float32, {}, False),
])
@pytest.mark.parametrize("nbytes", [256 * 1024, 1 << 20])
def test_cr1_fallback_bit_exact(algorithm, dtype, kwargs, bits, nbytes):
    config = CompressionConfig(enabled=True, algorithm=algorithm, **kwargs)
    payloads = [_incompressible(nbytes, dtype, seed=i, bits=bits)
                for i in range(2)]
    res, _ = run_pt2pt(config=config, payloads=payloads)
    assert_bit_exact(res, payloads)
    # the engine must actually have taken the raw-fallback path
    m = res.tracer.metrics
    assert m.counter("compress.fallback", codec=algorithm) >= 1


def test_fallback_under_faults_still_bit_exact():
    """Fallback sends remain protected by CRC + retransmission."""
    payloads = [_incompressible(256 * 1024, np.float32, seed=i, bits=True)
                for i in range(3)]
    res, _ = run_pt2pt(payloads=payloads,
                       faults=FaultPlan(seed=14, corrupt_rate=0.4))
    assert_bit_exact(res, payloads)
    assert res.tracer.metrics.counter_total("resilience.retransmit") > 0


# ---------------------------------------------------------------------------
# faults on relayed (keep-compressed) collective hops
# ---------------------------------------------------------------------------

def _run_bcast_4ranks(faults=None, iters=3):
    """4-rank binomial bcast on 2x2 longhorn: hops 0->2, 0->1, 2->3.
    The 2->3 hop relays rank 0's wire image, so faults there exercise
    NACK + retransmit from the *intermediate* rank's retained copy."""
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=2)
    payloads = [make_payload("dataset:msg_sppm", 1 << 18, seed=i)
                for i in range(iters)]

    def rank_fn(comm):
        got = []
        for p in payloads:
            out = yield from comm.bcast(p if comm.rank == 0 else None, root=0)
            got.append(np.asarray(out))
        return got

    return cluster.run(rank_fn, config=MPC, faults=faults, max_time=120.0)


def _relay_retransmits(res, root=0):
    """Retransmitted wire spans whose sender is NOT the collective root
    — i.e. a relayed hop was re-fed from its immediate upstream."""
    return [r for r in res.tracer.records
            if r.label == "wire_transfer" and r.meta.get("attempt")
            and r.rank != root]


def test_relayed_hop_corruption_and_drop_recover_bit_exact():
    clean = _run_bcast_4ranks()
    # seed 3 corrupts AND drops on the relayed 2->3 hop (among others)
    faulty = _run_bcast_4ranks(
        faults=FaultPlan(seed=3, corrupt_rate=0.25, drop_rate=0.1))
    for want, got in zip(clean.values, faulty.values):
        for w, g in zip(want, got):
            assert w.tobytes() == g.tobytes()
    m = faulty.tracer.metrics
    assert m.counter("faults.injected", kind="corrupt") > 0
    assert m.counter("faults.injected", kind="drop") > 0
    # the wire CRC (checked WITHOUT decompressing) caught the flip...
    assert m.counter_total("resilience.wire_crc_mismatch") > 0
    assert m.counter_total("resilience.data_timeout") > 0
    assert m.counter_total("resilience.retransmit") > 0
    # ...and at least one recovery was served by an intermediate rank
    relays = _relay_retransmits(faulty)
    assert relays
    # the relayed retransmit still carries the ORIGINATING seq, so the
    # trace can stitch the recovered hop back to its pack_wire span
    assert all("origin_seq" in r.meta for r in relays)


def test_relayed_hop_drop_only_recovers():
    clean = _run_bcast_4ranks()
    faulty = _run_bcast_4ranks(faults=FaultPlan(seed=5, drop_rate=0.1))
    for want, got in zip(clean.values, faulty.values):
        for w, g in zip(want, got):
            assert w.tobytes() == g.tobytes()
    m = faulty.tracer.metrics
    assert m.counter("faults.injected", kind="drop") > 0
    assert m.counter_total("resilience.data_timeout") > 0
    assert _relay_retransmits(faulty)


def test_allgather_ring_under_faults_bit_exact():
    """Every allgather hop beyond the first is a relay; corruption on
    any of them must recover from the immediate upstream."""
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=2)
    base = make_payload("dataset:msg_sppm", 1 << 18, seed=0)

    def rank_fn(comm):
        mine = base + np.asarray(comm.rank, dtype=base.dtype)
        out = yield from comm.allgather(mine)
        return [np.asarray(c) for c in out]

    clean = cluster.run(rank_fn, config=MPC, max_time=120.0)
    faulty = cluster.run(rank_fn, config=MPC, max_time=120.0,
                         faults=FaultPlan(seed=2, corrupt_rate=0.2))
    for want, got in zip(clean.values, faulty.values):
        for w, g in zip(want, got):
            assert w.tobytes() == g.tobytes()
    m = faulty.tracer.metrics
    assert m.counter("faults.injected", kind="corrupt") > 0
    assert m.counter_total("resilience.retransmit") > 0


# ---------------------------------------------------------------------------
# chaos harness
# ---------------------------------------------------------------------------

def test_chaos_harness_reports_clean_sweep():
    report = run_chaos(sizes=(256 * 1024,), iterations=3,
                       plan=FaultPlan(seed=1, corrupt_rate=0.2))
    assert report.ok
    assert report.total_messages == 3
    assert sum(r.faults_injected.get("corrupt", 0) for r in report.results) > 0
    assert "all payloads verified" in report.summary()


def test_chaos_harness_lossy_codec():
    report = run_chaos(sizes=(256 * 1024,), iterations=2,
                       config=CompressionConfig.zfp_opt(8),
                       plan=FaultPlan(seed=2, corrupt_rate=0.2, drop_rate=0.1))
    assert report.ok


@pytest.mark.parametrize("workload", ["bcast", "allgather", "allreduce"])
def test_chaos_harness_collective_workloads(workload):
    report = run_chaos(sizes=(256 * 1024,), iterations=2,
                       payload="dataset:msg_sppm", workload=workload,
                       plan=FaultPlan(seed=1, corrupt_rate=0.15,
                                      drop_rate=0.05))
    assert report.ok
    assert report.total_messages > 0


def test_chaos_rejects_unknown_workload():
    with pytest.raises(ValueError):
        run_chaos(workload="gatherv")
