"""Unit tests for the simulated GPU substrate."""

import numpy as np
import pytest

from repro.errors import (
    BufferPoolExhaustedError,
    ConfigError,
    GpuError,
    OutOfDeviceMemoryError,
)
from repro.gpu import (
    A100,
    RTX5000,
    V100,
    BufferPool,
    Device,
    DeviceBuffer,
    SizeClassBufferPool,
    device_preset,
)
from repro.sim import Simulator, Tracer
from repro.utils.units import us


# -- specs -------------------------------------------------------------------

def test_presets():
    assert V100.sm_count == 80
    assert RTX5000.sm_count == 48
    assert A100.sm_count == 108
    assert device_preset("v100") is V100
    assert device_preset("RTX5000") is RTX5000
    with pytest.raises(ConfigError):
        device_preset("h100")


def test_malloc_cost_model():
    """Base + per-byte: ~100us small, ~370us at 32MB (Section IV-A)."""
    assert V100.malloc_time(0) == pytest.approx(us(100))
    assert us(300) < V100.malloc_time(32 << 20) < us(450)


def test_memcpy_20us_floor():
    """Paper: cudaMemcpy of the 4-byte size 'consistently spends
    nearly 20us'."""
    assert V100.memcpy_time(4) == pytest.approx(us(20), rel=0.01)


def test_gdrcopy_1_5us():
    """Paper: GDRCopy reduces the cost 'from 20us to 1-5us'."""
    assert us(1) <= V100.gdrcopy_time(4) <= us(5)
    assert V100.gdrcopy_time(4) < V100.memcpy_time(4) / 4


def test_device_props_vs_attr():
    """Paper Sec V: ~1840us vs ~1us."""
    assert V100.device_props_query == pytest.approx(us(1840))
    assert V100.device_attr_query == pytest.approx(us(1))


def test_invalid_spec():
    import dataclasses

    with pytest.raises(ConfigError):
        dataclasses.replace(V100, sm_count=0)


# -- buffers ---------------------------------------------------------------------

def test_buffer_write_read(device):
    buf = DeviceBuffer(device, 1024)
    arr = np.arange(10, dtype=np.float32)
    buf.write(arr)
    assert np.array_equal(buf.read(), arr)


def test_buffer_overflow_rejected(device):
    buf = DeviceBuffer(device, 16)
    with pytest.raises(GpuError, match="exceeds"):
        buf.write(np.zeros(100, dtype=np.float32))


def test_buffer_read_unwritten(device):
    with pytest.raises(GpuError, match="unwritten"):
        DeviceBuffer(device, 16).read()


def test_buffer_negative_capacity(device):
    with pytest.raises(GpuError):
        DeviceBuffer(device, -1)


# -- device operations -------------------------------------------------------------

def test_malloc_charges_time_and_tracks(device):
    sim = device.sim

    def proc(sim, device):
        buf = yield from device.malloc(1 << 20, "test")
        return buf

    buf = sim.run_process(proc(sim, device))
    assert sim.now == pytest.approx(V100.malloc_time(1 << 20))
    assert device.allocated_bytes == 1 << 20
    assert buf.capacity == 1 << 20


def test_free_returns_memory(device):
    sim = device.sim

    def proc(sim, device):
        buf = yield from device.malloc(1024)
        yield from device.free(buf)

    sim.run_process(proc(sim, device))
    assert device.allocated_bytes == 0


def test_double_free_rejected(device):
    sim = device.sim

    def proc(sim, device):
        buf = yield from device.malloc(1024)
        yield from device.free(buf)
        yield from device.free(buf)

    with pytest.raises(GpuError, match="double free"):
        sim.run_process(proc(sim, device))


def test_oom(device):
    def proc(sim, device):
        yield from device.malloc(device.spec.mem_capacity + 1)

    with pytest.raises(OutOfDeviceMemoryError):
        device.sim.run_process(proc(device.sim, device))


def test_alloc_untimed_is_free(device):
    buf = device.alloc_untimed(4096)
    assert device.sim.now == 0.0
    assert buf.capacity == 4096


def test_memcpy_vs_gdrcopy_times(device):
    sim = device.sim

    def proc(sim, device):
        t0 = sim.now
        yield from device.memcpy_d2h(4)
        t_memcpy = sim.now - t0
        t0 = sim.now
        yield from device.gdrcopy(4)
        return t_memcpy, sim.now - t0

    t_memcpy, t_gdr = sim.run_process(proc(sim, device))
    assert t_memcpy == pytest.approx(us(20), rel=0.01)
    assert t_gdr < us(5)


def test_attr_query_cached(device):
    sim = device.sim

    def proc(sim, device):
        v1 = yield from device.get_device_attribute("sm_count")
        t_first = sim.now
        v2 = yield from device.get_device_attribute("sm_count")
        return v1, v2, t_first, sim.now

    v1, v2, t_first, t_second = sim.run_process(proc(sim, device))
    assert v1 == v2 == 80
    assert t_first == pytest.approx(us(1))
    assert t_second == t_first  # cached read: zero extra time


def test_props_query_expensive(device):
    sim = device.sim

    def proc(sim, device):
        props = yield from device.get_device_properties()
        return props

    props = sim.run_process(proc(sim, device))
    assert sim.now == pytest.approx(us(1840))
    assert props["sm_count"] == 80


def test_kernel_occupies_sms(device):
    sim = device.sim
    done = []

    def kernel(sim, device, blocks, label):
        yield from device.run_kernel(us(100), blocks, "compression_kernel", label)
        done.append((label, sim.now))

    sim.process(kernel(sim, device, 60, "a"))
    sim.process(kernel(sim, device, 60, "b"))  # must queue: 120 > 80 SMs
    sim.run()
    times = dict(done)
    assert times["a"] == pytest.approx(us(100))
    assert times["b"] == pytest.approx(us(200))


def test_concurrent_kernels_fit(device):
    sim = device.sim
    done = []

    def kernel(sim, device, label):
        yield from device.run_kernel(us(100), 20, "k", label)
        done.append(sim.now)

    for i in range(4):  # 4 x 20 = 80 SMs: all concurrent
        sim.process(kernel(sim, device, f"k{i}"))
    sim.run()
    assert all(t == pytest.approx(us(100)) for t in done)


def test_kernel_too_many_blocks(device):
    def proc(sim, device):
        yield from device.run_kernel(us(1), 81, "k")

    with pytest.raises(GpuError):
        device.sim.run_process(proc(device.sim, device))


def test_kernel_traced(device):
    sim = device.sim

    def proc(sim, device):
        yield from device.run_kernel(us(50), 10, "compression_kernel", "t")

    sim.run_process(proc(sim, device))
    assert sim.tracer.total("compression_kernel") == pytest.approx(us(50))


# -- streams ---------------------------------------------------------------------

def test_stream_serializes(device):
    sim = device.sim
    stream = device.new_stream()
    ends = []

    def enqueue(sim, stream, label):
        yield from stream.run_kernel(us(10), 5, "k", label)
        ends.append(sim.now)

    sim.process(enqueue(sim, stream, "a"))
    sim.process(enqueue(sim, stream, "b"))
    sim.run()
    assert ends == [pytest.approx(us(10)), pytest.approx(us(20))]


def test_streams_overlap(device):
    sim = device.sim
    s1, s2 = device.new_stream(), device.new_stream()
    ends = []

    def enqueue(sim, stream):
        yield from stream.run_kernel(us(10), 5, "k")
        ends.append(sim.now)

    sim.process(enqueue(sim, s1))
    sim.process(enqueue(sim, s2))
    sim.run()
    assert all(t == pytest.approx(us(10)) for t in ends)


def test_stream_ids_unique(device):
    assert device.new_stream().stream_id != device.new_stream().stream_id


# -- pools ---------------------------------------------------------------------

def test_pool_preallocation_untimed(device):
    pool = BufferPool(device, 1 << 20, count=4)
    assert device.sim.now == 0.0
    assert pool.total == 4 and pool.free_count == 4


def test_pool_acquire_release_cheap(device):
    sim = device.sim
    pool = BufferPool(device, 1 << 20, count=2)

    def proc(sim, pool):
        buf = yield from pool.acquire(1000, "x")
        t_acq = sim.now
        yield from pool.release(buf)
        return t_acq

    t_acq = sim.run_process(proc(sim, pool))
    assert t_acq < us(2)  # vastly cheaper than the ~100us cudaMalloc


def test_pool_grows_on_demand(device):
    sim = device.sim
    pool = BufferPool(device, 1024, count=0, growable=True)

    def proc(sim, pool):
        buf = yield from pool.acquire(512)
        return buf

    sim.run_process(proc(sim, pool))
    assert pool.total == 1
    assert sim.now >= V100.malloc_time(1024) * 0.99  # grow paid cudaMalloc


def test_pool_exhausted_not_growable(device):
    pool = BufferPool(device, 1024, count=0, growable=False)

    def proc(sim, pool):
        yield from pool.acquire(512)

    with pytest.raises(BufferPoolExhaustedError):
        device.sim.run_process(proc(device.sim, pool))


def test_pool_request_too_large(device):
    pool = BufferPool(device, 1024, count=1)

    def proc(sim, pool):
        yield from pool.acquire(2048)

    with pytest.raises(BufferPoolExhaustedError):
        device.sim.run_process(proc(device.sim, pool))


def test_pool_reuse_cycle(device):
    sim = device.sim
    pool = BufferPool(device, 1024, count=1)

    def proc(sim, pool):
        for _ in range(5):
            buf = yield from pool.acquire(100)
            yield from pool.release(buf)

    sim.run_process(proc(sim, pool))
    assert pool.total == 1  # same buffer recycled


def test_pool_concurrent_acquires_no_double_grant(device):
    """Regression: two processes acquiring across the bookkeeping
    timeout must get different buffers."""
    sim = device.sim
    pool = BufferPool(device, 1024, count=2, growable=False)
    got = []

    def proc(sim, pool):
        buf = yield from pool.acquire(100)
        got.append(buf)

    sim.process(proc(sim, pool))
    sim.process(proc(sim, pool))
    sim.run()
    assert got[0] is not got[1]


def test_pool_foreign_release_rejected(device):
    pool = BufferPool(device, 1024, count=1)
    alien = device.alloc_untimed(1024)

    def proc(sim, pool, alien):
        yield from pool.release(alien)

    with pytest.raises(GpuError):
        device.sim.run_process(proc(device.sim, pool, alien))


# -- size-class pool ------------------------------------------------------------

def test_size_class_routing(device):
    sim = device.sim
    pool = SizeClassBufferPool(device, min_bytes=1 << 10, max_bytes=1 << 14,
                               count_per_class=1)
    assert pool.class_sizes == [1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14]

    def proc(sim, pool):
        small = yield from pool.acquire(100)
        big = yield from pool.acquire(5000)
        yield from pool.release(small)
        yield from pool.release(big)
        return small.capacity, big.capacity

    small_cap, big_cap = sim.run_process(proc(sim, pool))
    assert small_cap == 1 << 10
    assert big_cap == 1 << 13


def test_size_class_too_large(device):
    pool = SizeClassBufferPool(device, min_bytes=1 << 10, max_bytes=1 << 12)

    def proc(sim, pool):
        yield from pool.acquire(1 << 20)

    with pytest.raises(BufferPoolExhaustedError):
        device.sim.run_process(proc(device.sim, pool))


def test_size_class_bad_bounds(device):
    with pytest.raises(GpuError):
        SizeClassBufferPool(device, min_bytes=1 << 14, max_bytes=1 << 10)
