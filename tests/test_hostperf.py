"""Host-performance harness: schema, collection, comparison gating.

These tests never assert absolute wall-clock numbers — host speed is
machine-dependent.  They pin the *machinery*: the snapshot schema, the
metric direction convention (``*_per_s`` is a rate even though it also
ends in ``_s``), the relative-threshold gate, and the selftest that
proves the gate catches injected regressions.
"""

import json

import pytest

from repro.analysis import hostperf


def _tiny_collect(**kw):
    # One codec config at the small size, single rep: fast enough for CI.
    return hostperf.collect(quick=True, reps=1,
                            only="codec/zfp8-f32/smooth/256K", **kw)


def test_collect_produces_schema_valid_snapshot():
    doc = _tiny_collect(label="t")
    assert doc["schema_version"] == hostperf.SCHEMA_VERSION
    assert doc["label"] == "t"
    assert doc["mode"] == "quick"
    assert doc["reps"] == 1
    assert list(doc["benchmarks"]) == ["codec/zfp8-f32/smooth/256K"]
    entry = doc["benchmarks"]["codec/zfp8-f32/smooth/256K"]
    assert entry["kind"] == "codec"
    assert entry["params"]["codec"] == "zfp"
    assert entry["params"]["codec_params"] == {"rate": 8}
    m = entry["metrics"]
    for key in ("encode_s", "decode_s", "encode_mb_per_s",
                "decode_mb_per_s", "ratio"):
        assert m[key] > 0
    # Rates and times must agree: MB/s == nbytes / seconds / 1e6.
    assert m["encode_mb_per_s"] == pytest.approx(
        entry["params"]["nbytes"] / m["encode_s"] / 1e6, rel=0.01)


def test_collect_progress_and_engine_bench():
    seen = []
    doc = hostperf.collect(quick=True, reps=1, only="engine/",
                           progress=seen.append)
    assert "engine/events" in seen and "engine/spans" in seen
    assert any(n.startswith("engine/scale/") for n in seen)
    for name in seen:
        m = doc["benchmarks"][name]["metrics"]
        assert m["run_s"] > 0 and m["events_per_s"] > 0


def test_matrix_covers_every_kind():
    names = [mb.name for mb in hostperf.benchmark_matrix(quick=True)]
    assert "engine/events" in names
    assert "engine/spans" in names
    assert "e2e/bench-quick" in names
    codecs = {n.split("/")[1] for n in names if n.startswith("codec/")}
    assert {"zfp8-f32", "zfp2d8-f32", "mpc-d1-f32", "fpc-f64",
            "gfc-f64", "sz-f32"} <= codecs
    # Full mode adds the 16 MiB size.
    full = [mb.name for mb in hostperf.benchmark_matrix(quick=False)]
    assert any(n.endswith("/16384K") for n in full)
    assert not any(n.endswith("/16384K") for n in names)


def test_write_load_roundtrip(tmp_path):
    doc = _tiny_collect(label="rt")
    path = tmp_path / "HOSTPERF_rt.json"
    hostperf.write(doc, path)
    assert hostperf.load(path) == doc
    # dumps is deterministic and newline-terminated (clean git diffs).
    text = path.read_text()
    assert text == hostperf.dumps(doc)
    assert text.endswith("\n")
    assert json.loads(text) == doc


def test_load_rejects_wrong_schema_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema_version": 999, "benchmarks": {}}))
    with pytest.raises(ValueError, match="schema_version"):
        hostperf.load(path)


# -- comparison direction semantics ------------------------------------------

def _snap(**metrics):
    return {"schema_version": hostperf.SCHEMA_VERSION, "label": "x",
            "mode": "quick", "reps": 1,
            "benchmarks": {"b": {"kind": "codec", "params": {},
                                 "metrics": metrics}}}


def test_compare_time_growth_is_a_regression():
    cmp = hostperf.compare(_snap(encode_s=0.02), _snap(encode_s=0.01),
                           threshold=0.30)
    assert not cmp.ok
    (d,) = cmp.regressions
    assert d.metric == "encode_s" and d.rel == pytest.approx(1.0)
    assert "REGRESSION" in cmp.report()


def test_compare_rate_shrink_is_a_regression():
    # encode_mb_per_s ends in "_s" too — the _per_s rule must win.
    cmp = hostperf.compare(_snap(encode_mb_per_s=50.0),
                           _snap(encode_mb_per_s=100.0), threshold=0.30)
    assert not cmp.ok
    (d,) = cmp.regressions
    assert d.metric == "encode_mb_per_s" and d.rel == pytest.approx(0.5)


def test_compare_improvements_report_but_never_gate():
    cur = _snap(encode_s=0.002, encode_mb_per_s=500.0)
    base = _snap(encode_s=0.010, encode_mb_per_s=100.0)
    cmp = hostperf.compare(cur, base, threshold=0.30)
    assert cmp.ok
    assert len(cmp.drifts) == 2 and not cmp.regressions
    assert "improvement" in cmp.report()


def test_compare_within_threshold_is_clean():
    cmp = hostperf.compare(_snap(encode_s=0.011), _snap(encode_s=0.010),
                           threshold=0.30)
    assert cmp.ok and not cmp.drifts and cmp.checked == 1


def test_compare_skips_uncompared_metrics_and_new_benchmarks():
    # "ratio" carries no direction suffix: informational only.
    cmp = hostperf.compare(_snap(ratio=1.0), _snap(ratio=4.0))
    assert cmp.ok and cmp.checked == 0
    # A benchmark present only in the baseline (or only in current) is
    # skipped — the matrix is allowed to grow or shrink.
    empty = {"schema_version": hostperf.SCHEMA_VERSION, "benchmarks": {}}
    assert hostperf.compare(empty, _snap(encode_s=0.01)).ok
    assert hostperf.compare(_snap(encode_s=0.01), empty).ok


def test_selftest_passes():
    assert hostperf.selftest() == []


def test_committed_baseline_loads_and_self_compares():
    doc = hostperf.load("tests/data/HOSTPERF_baseline.json")
    assert doc["schema_version"] == hostperf.SCHEMA_VERSION
    assert "e2e/bench-quick" in doc["benchmarks"]
    cmp = hostperf.compare(doc, doc)
    assert cmp.ok and cmp.checked > 0 and not cmp.drifts


# -- CLI ---------------------------------------------------------------------

def _main(argv):
    from repro.__main__ import main
    return main(argv)


def test_cli_perf_selftest_ok(capsys):
    _main(["perf", "--selftest"])
    assert "selftest OK" in capsys.readouterr().out


def test_cli_perf_compare_gates_on_injected_regression(tmp_path, capsys):
    cur = tmp_path / "cur.json"
    base = tmp_path / "base.json"
    doc = _snap(encode_s=0.010)
    hostperf.write(doc, base)
    slow = _snap(encode_s=0.030)
    hostperf.write(slow, cur)
    with pytest.raises(SystemExit) as exc:
        _main(["perf", "--against", str(cur), "--compare", str(base)])
    assert exc.value.code == 1
    assert "REGRESSION" in capsys.readouterr().out
    # --advisory reports but exits cleanly.
    _main(["perf", "--against", str(cur), "--compare", str(base),
           "--advisory"])
    assert "REGRESSION" in capsys.readouterr().out
    # No regression -> clean pass.
    _main(["perf", "--against", str(base), "--compare", str(base)])
    assert "OK" in capsys.readouterr().out


# -- engine/scale + memory metrics -------------------------------------------

def test_matrix_includes_scale_points():
    for quick in (True, False):
        names = [mb.name for mb in hostperf.benchmark_matrix(quick=quick)]
        assert "engine/scale/256" in names
        assert "engine/scale/1024" in names


def test_engine_bench_reports_peak_heap():
    doc = hostperf.collect(quick=True, reps=1, only="engine/events")
    m = doc["benchmarks"]["engine/events"]["metrics"]
    assert m["peak_heap_bytes"] > 0


def test_scale_bench_collects():
    doc = hostperf.collect(quick=True, reps=1, only="engine/scale/256")
    m = doc["benchmarks"]["engine/scale/256"]["metrics"]
    assert m["events_per_s"] > 0
    assert m["peak_heap_bytes"] > 0
    assert m["n_events"] > 256  # every rank contributes events


def test_compare_heap_growth_is_a_regression():
    cmp = hostperf.compare(_snap(peak_heap_bytes=4 << 20),
                           _snap(peak_heap_bytes=1 << 20), threshold=0.30)
    assert not cmp.ok
    (d,) = cmp.regressions
    assert d.metric == "peak_heap_bytes"
    # Shrinking heap is an improvement, never gates.
    cmp = hostperf.compare(_snap(peak_heap_bytes=1 << 20),
                           _snap(peak_heap_bytes=4 << 20), threshold=0.30)
    assert cmp.ok
