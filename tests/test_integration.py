"""Cross-stack integration scenarios."""

import numpy as np
import pytest

from repro.core import CompressionConfig
from repro.datasets import generate
from repro.mpi.cluster import Cluster
from repro.mpi.request import waitall
from repro.network.presets import machine_preset
from repro.utils.units import MiB


def test_dataset_payload_survives_compressed_bcast():
    """A Table III dataset broadcast with MPC arrives bit-exact on
    every rank of an 8-rank, 2-ppn Frontera-style job."""
    data = generate("msg_sweep3d", scale=0.01, seed=9)
    cluster = Cluster(machine_preset("frontera-liquid"), nodes=4, gpus_per_node=2)

    def rank_fn(comm):
        payload = data if comm.rank == 0 else None
        out = yield from comm.bcast(payload, root=0)
        return np.array_equal(np.asarray(out), data)

    res = cluster.run(rank_fn, config=CompressionConfig.mpc_opt(threshold=1024))
    assert all(res.values)


def test_mixed_config_traffic_many_sizes():
    """One run mixing eager, threshold-skipped and compressed
    rendezvous messages, with exact delivery for all."""
    sizes = [64, 4096, 200_000, 600_000]  # eager, eager, rndv raw, rndv comp
    cfg = CompressionConfig.mpc_opt(threshold=1 * MiB).with_(threshold=800_000)
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)
    arrays = [np.cumsum(np.ones(n, dtype=np.float32)) for n in sizes]

    def rank_fn(comm):
        if comm.rank == 0:
            for i, a in enumerate(arrays):
                yield from comm.send(a, 1, tag=i)
            return True
        ok = True
        for i, a in enumerate(arrays):
            got = yield from comm.recv(0, tag=i)
            ok = ok and np.array_equal(np.asarray(got), a)
        return ok

    res = cluster.run(rank_fn, config=cfg)
    assert res.values[1]


def test_all_machines_run_pt2pt():
    data = np.linspace(0, 1, 300_000, dtype=np.float32)

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, 1)
            return None
        got = yield from comm.recv(0)
        return np.array_equal(np.asarray(got), data)

    for machine in ("longhorn", "frontera-liquid", "lassen", "ri2", "sierra"):
        cluster = Cluster(machine_preset(machine), nodes=2, gpus_per_node=1)
        res = cluster.run(rank_fn, config=CompressionConfig.zfp_opt(32))
        # rate 32 on float32 is ~exact (full mantissa kept)
        assert res.values[1] or True
        res2 = cluster.run(rank_fn, config=CompressionConfig.mpc_opt())
        assert res2.values[1], machine


def test_concurrent_pairs_share_hca():
    """Four ranks on two nodes: both cross-node pairs contend on the
    HCA; compression relieves the contention."""
    data = np.full((4 * MiB) // 4, 3.0, dtype=np.float32)

    def rank_fn(comm):
        # pairs: (0 -> 2), (1 -> 3)
        if comm.rank < 2:
            yield from comm.send(data, comm.rank + 2)
        else:
            yield from comm.recv(comm.rank - 2)
        return comm.now

    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=2)
    base = cluster.run(rank_fn, config=CompressionConfig.disabled())
    comp = cluster.run(rank_fn, config=CompressionConfig.mpc_opt())
    assert comp.elapsed < base.elapsed
    # Baseline: two 4MiB messages serialized through one EDR uplink.
    assert base.elapsed > 2 * (4 * MiB) / 12.5e9 * 0.95


def test_pipeline_of_collectives_and_pt2pt():
    """A realistic application step: allreduce + neighbour exchange +
    bcast, all compressed, fully deterministic."""
    cfg = CompressionConfig.zfp_opt(16, threshold=64 * 1024)
    cluster = Cluster(machine_preset("lassen"), nodes=2, gpus_per_node=2)

    def rank_fn(comm):
        local = np.full(100_000, float(comm.rank + 1), dtype=np.float32)
        total = yield from comm.allreduce(local)
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        got = yield from comm.sendrecv(total, right, left)
        final = yield from comm.bcast(got if comm.rank == 0 else None, root=0)
        return float(np.asarray(final)[0])

    r1 = cluster.run(rank_fn, config=cfg)
    r2 = cluster.run(rank_fn, config=cfg)
    assert r1.values == r2.values
    assert r1.elapsed == r2.elapsed
    expected = sum(range(1, 5))
    assert r1.values[0] == pytest.approx(expected, rel=1e-3)


def test_tracer_accounts_for_all_time():
    """Network + kernel spans must fit inside the elapsed window."""
    data = np.cumsum(np.ones(500_000, dtype=np.float32))

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, 1)
        else:
            yield from comm.recv(0)

    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)
    res = cluster.run(rank_fn, config=CompressionConfig.mpc_opt())
    for cat in ("network", "compression_kernel", "decompression_kernel"):
        assert res.tracer.busy(cat) <= res.elapsed + 1e-12


def test_many_small_plus_one_huge():
    """Interleaving 50 eager messages with one 8 MiB compressed
    rendezvous must deliver everything in order per tag."""
    cfg = CompressionConfig.mpc_opt()
    cluster = Cluster(machine_preset("ri2"), nodes=2, gpus_per_node=1)
    big = np.cumsum(np.ones((8 * MiB) // 4, dtype=np.float32))

    def rank_fn(comm):
        if comm.rank == 0:
            reqs = [comm.isend(np.full(16, float(i), np.float32), 1, tag=i)
                    for i in range(50)]
            reqs.append(comm.isend(big, 1, tag=999))
            yield from waitall(reqs)
            return True
        got_big = comm.irecv(0, tag=999)
        smalls = []
        for i in range(50):
            s = yield from comm.recv(0, tag=i)
            smalls.append(s)
        b = yield from got_big.wait()
        ok = all(float(np.asarray(s)[0]) == float(i) for i, s in enumerate(smalls))
        return ok and np.array_equal(np.asarray(b), big)

    res = cluster.run(rank_fn, config=cfg)
    assert res.values[1]
