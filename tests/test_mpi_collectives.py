"""Collective algorithm correctness across communicator sizes."""

import numpy as np
import pytest

from repro.core import CompressionConfig
from repro.errors import MpiError
from repro.mpi.cluster import Cluster
from repro.network.presets import machine_preset


def run_collective(nprocs, rank_fn, config=None, machine="frontera-liquid", ppn=1):
    nodes = -(-nprocs // ppn)
    cluster = Cluster(machine_preset(machine), nodes=nodes, gpus_per_node=ppn)
    return cluster.run(rank_fn, nprocs=nprocs, config=config)


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 7, 8])
def test_bcast_all_sizes(nprocs):
    payload = np.arange(500, dtype=np.float32)

    def rank_fn(comm):
        data = payload if comm.rank == 0 else None
        out = yield from comm.bcast(data, root=0)
        return np.asarray(out).sum()

    res = run_collective(nprocs, rank_fn)
    assert all(v == pytest.approx(payload.sum()) for v in res.values)


@pytest.mark.parametrize("root", [0, 1, 3])
def test_bcast_nonzero_root(root):
    def rank_fn(comm):
        data = np.full(100, 7.0, dtype=np.float32) if comm.rank == root else None
        out = yield from comm.bcast(data, root=root)
        return float(np.asarray(out)[0])

    res = run_collective(4, rank_fn)
    assert res.values == [7.0] * 4


def test_bcast_bad_root():
    def rank_fn(comm):
        yield from comm.bcast(None, root=9)

    with pytest.raises(MpiError):
        run_collective(2, rank_fn)


@pytest.mark.parametrize("nprocs", [1, 2, 4, 5, 8])
def test_allgather(nprocs):
    def rank_fn(comm):
        mine = np.full(64, float(comm.rank), dtype=np.float32)
        out = yield from comm.allgather(mine)
        return [float(np.asarray(c).reshape(-1)[0]) for c in out]

    res = run_collective(nprocs, rank_fn)
    for v in res.values:
        assert v == [float(i) for i in range(nprocs)]


@pytest.mark.parametrize("nprocs", [2, 3, 4, 8])
def test_gather(nprocs):
    def rank_fn(comm):
        mine = np.array([comm.rank * 2.0], dtype=np.float32)
        out = yield from comm.gather(mine, root=0)
        if comm.rank == 0:
            return [float(np.asarray(c)[0]) for c in out]
        return out

    res = run_collective(nprocs, rank_fn)
    assert res.values[0] == [i * 2.0 for i in range(nprocs)]
    assert all(v is None for v in res.values[1:])


@pytest.mark.parametrize("nprocs", [2, 4, 5])
def test_scatter(nprocs):
    def rank_fn(comm):
        chunks = None
        if comm.rank == 0:
            chunks = [np.full(8, float(i), dtype=np.float32) for i in range(comm.size)]
        got = yield from comm.scatter(chunks, root=0)
        return float(np.asarray(got)[0])

    res = run_collective(nprocs, rank_fn)
    assert res.values == [float(i) for i in range(nprocs)]


def test_scatter_wrong_chunk_count():
    def rank_fn(comm):
        chunks = [np.zeros(2, np.float32)] if comm.rank == 0 else None
        yield from comm.scatter(chunks, root=0)

    with pytest.raises(MpiError):
        run_collective(3, rank_fn)


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 8])
def test_reduce_sum(nprocs):
    def rank_fn(comm):
        mine = np.full(32, float(comm.rank + 1), dtype=np.float32)
        out = yield from comm.reduce(mine, root=0)
        return None if out is None else float(np.asarray(out)[0])

    res = run_collective(nprocs, rank_fn)
    expected = sum(range(1, nprocs + 1))
    assert res.values[0] == pytest.approx(expected)
    assert all(v is None for v in res.values[1:])


@pytest.mark.parametrize("nprocs", [1, 2, 4, 8])
def test_allreduce_power_of_two(nprocs):
    def rank_fn(comm):
        mine = np.full(16, float(comm.rank), dtype=np.float32)
        out = yield from comm.allreduce(mine)
        return float(np.asarray(out)[0])

    res = run_collective(nprocs, rank_fn)
    expected = sum(range(nprocs))
    assert all(v == pytest.approx(expected) for v in res.values)


@pytest.mark.parametrize("nprocs", [3, 5, 6])
def test_allreduce_non_power_of_two(nprocs):
    def rank_fn(comm):
        mine = np.full(16, 2.0 ** comm.rank, dtype=np.float32)
        out = yield from comm.allreduce(mine)
        return float(np.asarray(out)[0])

    res = run_collective(nprocs, rank_fn)
    expected = sum(2.0 ** r for r in range(nprocs))
    assert all(v == pytest.approx(expected) for v in res.values)


def test_allreduce_custom_op():
    def rank_fn(comm):
        mine = np.array([float(comm.rank + 1)], dtype=np.float32)
        out = yield from comm.allreduce(mine, op=np.maximum)
        return float(np.asarray(out)[0])

    res = run_collective(4, rank_fn)
    assert all(v == 4.0 for v in res.values)


@pytest.mark.parametrize("nprocs", [2, 3, 4, 6])
def test_alltoall(nprocs):
    def rank_fn(comm):
        chunks = [
            np.full(16, comm.rank * 100.0 + dst, dtype=np.float32)
            for dst in range(comm.size)
        ]
        got = yield from comm.alltoall(chunks)
        return [float(np.asarray(c).reshape(-1)[0]) for c in got]

    res = run_collective(nprocs, rank_fn)
    for rank, v in enumerate(res.values):
        assert v == [src * 100.0 + rank for src in range(nprocs)]


def test_alltoall_wrong_count():
    def rank_fn(comm):
        yield from comm.alltoall([np.zeros(2, np.float32)])

    with pytest.raises(MpiError):
        run_collective(3, rank_fn)


@pytest.mark.parametrize("nprocs", [2, 3, 5, 8])
def test_barrier_synchronizes(nprocs):
    def rank_fn(comm):
        # Stagger arrival, then everyone leaves the barrier together.
        yield comm.sim.timeout(comm.rank * 1e-4)
        yield from comm.barrier()
        return comm.now

    res = run_collective(nprocs, rank_fn)
    latest_arrival = (nprocs - 1) * 1e-4
    assert all(v >= latest_arrival for v in res.values)


def test_bcast_with_compression_correct():
    payload = np.cumsum(np.ones(1 << 19, dtype=np.float32) * 1e-4).astype(np.float32)

    def rank_fn(comm):
        data = payload if comm.rank == 0 else None
        out = yield from comm.bcast(data, root=0)
        return float(np.asarray(out).astype(np.float64).sum())

    res = run_collective(8, rank_fn, config=CompressionConfig.mpc_opt(), ppn=2)
    expected = float(payload.astype(np.float64).sum())
    assert all(v == pytest.approx(expected) for v in res.values)


def test_allgather_with_compression_faster_on_compressible():
    payload = np.full(1 << 19, 2.5, dtype=np.float32)  # 2 MiB constant

    def rank_fn(comm):
        out = yield from comm.allgather(payload)
        return comm.now

    base = run_collective(8, rank_fn, config=CompressionConfig.disabled(), ppn=2)
    comp = run_collective(8, rank_fn, config=CompressionConfig.mpc_opt(), ppn=2)
    assert comp.elapsed < base.elapsed
