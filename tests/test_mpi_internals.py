"""Matching engine, requests and cluster runner internals."""

import numpy as np
import pytest

from repro.core.header import CompressionHeader
from repro.errors import MpiError
from repro.mpi import Cluster
from repro.mpi.matching import ANY, MatchingEngine
from repro.mpi.message import CONTROL_PACKET_BYTES, Packet, PacketKind
from repro.mpi.request import Request, waitall
from repro.network.presets import machine_preset
from repro.sim import Simulator


def pkt(src=0, dst=1, tag=0, seq=1, kind=PacketKind.RTS, header=None):
    return Packet(kind, src, dst, tag, seq, header=header)


# -- packets ---------------------------------------------------------------

def test_control_bytes_include_header():
    h = CompressionHeader.for_message("mpc", np.float32, 100, 1, (50, 50))
    p = pkt(header=h)
    assert p.control_bytes() == CONTROL_PACKET_BYTES + h.nbytes
    assert pkt().control_bytes() == CONTROL_PACKET_BYTES


# -- matching ---------------------------------------------------------------

def test_posted_recv_matches_later_arrival(sim):
    m = MatchingEngine(sim, 1)
    ev = m.post_recv(0, 7)
    assert not ev.triggered
    m.deliver_envelope(pkt(tag=7))
    assert ev.triggered and ev.value.tag == 7


def test_unexpected_then_post(sim):
    m = MatchingEngine(sim, 1)
    m.deliver_envelope(pkt(tag=7))
    assert m.unexpected_count == 1
    ev = m.post_recv(0, 7)
    assert ev.triggered
    assert m.unexpected_count == 0


def test_fifo_among_equal_matches(sim):
    m = MatchingEngine(sim, 1)
    p1, p2 = pkt(seq=1), pkt(seq=2)
    m.deliver_envelope(p1)
    m.deliver_envelope(p2)
    assert m.post_recv(0, 0).value.seq == 1
    assert m.post_recv(0, 0).value.seq == 2


def test_wildcards(sim):
    m = MatchingEngine(sim, 1)
    m.deliver_envelope(pkt(src=3, tag=9))
    assert m.post_recv(ANY, ANY).triggered


def test_no_match_on_wrong_tag(sim):
    m = MatchingEngine(sim, 1)
    m.deliver_envelope(pkt(tag=1))
    ev = m.post_recv(0, 2)
    assert not ev.triggered
    assert m.pending_recvs == 1


def test_no_match_on_wrong_source(sim):
    m = MatchingEngine(sim, 1)
    m.deliver_envelope(pkt(src=2))
    assert not m.post_recv(3, ANY).triggered


def test_cts_routing_by_seq(sim):
    m = MatchingEngine(sim, 0)
    ev = m.expect_cts(42)
    m.deliver_cts(pkt(kind=PacketKind.CTS, seq=42))
    assert ev.triggered


def test_early_data_buffered(sim):
    """DATA arriving before the waiter registers must not be lost."""
    m = MatchingEngine(sim, 0)
    m.deliver_data(pkt(kind=PacketKind.DATA, seq=9))
    ev = m.expect_data(9)
    assert ev.triggered and ev.value.seq == 9


def test_duplicate_waiter_rejected(sim):
    m = MatchingEngine(sim, 0)
    m.expect_cts(1)
    with pytest.raises(MpiError):
        m.expect_cts(1)


# -- requests -----------------------------------------------------------------

def test_request_complete_then_wait(sim):
    req = Request(sim)
    req.complete("hello")

    def proc(sim, req):
        val = yield from req.wait()
        return val

    assert sim.run_process(proc(sim, req)) == "hello"


def test_request_wait_then_complete(sim):
    req = Request(sim)

    def waiter(sim, req):
        val = yield from req.wait()
        return val

    def completer(sim, req):
        yield sim.timeout(1.0)
        req.complete(123)

    p = sim.process(waiter(sim, req))
    sim.process(completer(sim, req))
    sim.run()
    assert p.value == 123


def test_request_double_complete(sim):
    req = Request(sim)
    req.complete(1)
    with pytest.raises(MpiError):
        req.complete(2)


def test_request_failure_propagates(sim):
    req = Request(sim)

    def waiter(sim, req):
        yield from req.wait()

    p = sim.process(waiter(sim, req))
    req.fail(RuntimeError("transport error"))
    with pytest.raises(RuntimeError, match="transport error"):
        sim.run()


def test_request_test_raises_failure(sim):
    req = Request(sim)
    req.fail(ValueError("x"))
    with pytest.raises(ValueError):
        req.test()


def test_waitall_order(sim):
    reqs = [Request(sim) for _ in range(3)]

    def proc(sim, reqs):
        vals = yield from waitall(reqs)
        return vals

    p = sim.process(proc(sim, reqs))
    # complete out of order
    reqs[2].complete("c")
    reqs[0].complete("a")
    reqs[1].complete("b")
    sim.run()
    assert p.value == ["a", "b", "c"]


def test_multiple_waiters_one_request(sim):
    req = Request(sim)
    results = []

    def waiter(sim, req):
        val = yield from req.wait()
        results.append(val)

    sim.process(waiter(sim, req))
    sim.process(waiter(sim, req))
    req.complete("shared")
    sim.run()
    assert results == ["shared", "shared"]


# -- cluster runner -------------------------------------------------------------

def test_cluster_returns_rank_values(two_node_cluster):
    def rank_fn(comm):
        yield comm.sim.timeout(0)
        return comm.rank * 10

    res = two_node_cluster.run(rank_fn)
    assert res.values == [0, 10]


def test_cluster_nprocs_capped(two_node_cluster):
    def rank_fn(comm):
        yield comm.sim.timeout(0)

    with pytest.raises(MpiError):
        two_node_cluster.run(rank_fn, nprocs=3)


def test_cluster_rank_exception_surfaces(two_node_cluster):
    def rank_fn(comm):
        yield comm.sim.timeout(0)
        if comm.rank == 1:
            raise ValueError("rank 1 crashed")

    with pytest.raises(ValueError, match="rank 1 crashed"):
        two_node_cluster.run(rank_fn)


def test_cluster_runs_independent(two_node_cluster):
    def rank_fn(comm):
        yield comm.sim.timeout(1e-3)
        return comm.now

    r1 = two_node_cluster.run(rank_fn)
    r2 = two_node_cluster.run(rank_fn)
    assert r1.elapsed == r2.elapsed  # fresh simulator each run


def test_cluster_from_string_preset():
    c = Cluster("ri2", nodes=2, gpus_per_node=1)
    assert c.preset.name == "ri2"
    assert c.n_gpus == 2


def test_quick_cluster_top_level():
    from repro import quick_cluster

    c = quick_cluster("lassen", nodes=2, gpus_per_node=4)
    assert c.n_gpus == 8


def test_cluster_determinism(two_node_cluster):
    data = np.cumsum(np.ones(200_000, dtype=np.float32))

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, 1)
        else:
            yield from comm.recv(0)
        return comm.now

    from repro.core import CompressionConfig

    e1 = two_node_cluster.run(rank_fn, config=CompressionConfig.mpc_opt()).elapsed
    e2 = two_node_cluster.run(rank_fn, config=CompressionConfig.mpc_opt()).elapsed
    assert e1 == e2
