"""Point-to-point MPI semantics on the simulated cluster."""

import numpy as np
import pytest

from repro.core import CompressionConfig
from repro.errors import DeadlockError, MpiError
from repro.mpi import ANY_SOURCE, ANY_TAG
from repro.mpi.comm import EAGER_THRESHOLD
from repro.mpi.request import waitall
from repro.utils.units import KiB, MiB

from tests.conftest import smooth_f32


def test_basic_send_recv(two_node_cluster):
    data = smooth_f32(1000)

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, 1, tag=5)
            return None
        got = yield from comm.recv(0, tag=5)
        return got

    res = two_node_cluster.run(rank_fn)
    assert np.array_equal(res.values[1], data)


def test_large_message_rendezvous(two_node_cluster):
    data = smooth_f32((1 * MiB) // 4)

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, 1)
            return None
        return (yield from comm.recv(0))

    res = two_node_cluster.run(rank_fn)
    assert np.array_equal(res.values[1], data)
    # rendezvous wire time dominated by EDR serialization
    assert res.elapsed > 1 * MiB / 12.5e9


def test_eager_below_threshold_faster_setup(two_node_cluster):
    small = smooth_f32(64)  # 256 B, eager

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(small, 1)
        else:
            yield from comm.recv(0)
        return comm.now

    res = two_node_cluster.run(rank_fn)
    assert res.elapsed < 50e-6  # no handshake round trips


def test_tag_matching_out_of_order(two_node_cluster):
    a, b = smooth_f32(100, seed=1), smooth_f32(100, seed=2)

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(a, 1, tag=1)
            yield from comm.send(b, 1, tag=2)
            return None
        # Receive in reverse tag order.
        got_b = yield from comm.recv(0, tag=2)
        got_a = yield from comm.recv(0, tag=1)
        return got_a, got_b

    res = two_node_cluster.run(rank_fn)
    got_a, got_b = res.values[1]
    assert np.array_equal(got_a, a) and np.array_equal(got_b, b)


def test_any_source_any_tag(two_node_cluster):
    data = smooth_f32(50)

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, 1, tag=77)
            return None
        return (yield from comm.recv(ANY_SOURCE, ANY_TAG))

    res = two_node_cluster.run(rank_fn)
    assert np.array_equal(res.values[1], data)


def test_isend_irecv_overlap(two_node_cluster):
    x, y = smooth_f32(80_000, seed=3), smooth_f32(80_000, seed=4)

    def rank_fn(comm):
        peer = 1 - comm.rank
        mine = x if comm.rank == 0 else y
        sreq = comm.isend(mine, peer, tag=9)
        rreq = comm.irecv(peer, tag=9)
        got = yield from rreq.wait()
        yield from sreq.wait()
        return got

    res = two_node_cluster.run(rank_fn)
    assert np.array_equal(res.values[0], y)
    assert np.array_equal(res.values[1], x)


def test_sendrecv(two_node_cluster):
    def rank_fn(comm):
        peer = 1 - comm.rank
        mine = np.full(100, float(comm.rank), dtype=np.float32)
        got = yield from comm.sendrecv(mine, peer, peer)
        return float(got[0])

    res = two_node_cluster.run(rank_fn)
    assert res.values == [1.0, 0.0]


def test_self_send(two_node_cluster):
    data = smooth_f32(100)

    def rank_fn(comm):
        if comm.rank == 0:
            req = comm.isend(data, 0, tag=3)
            got = yield from comm.recv(0, tag=3)
            yield from req.wait()
            return got
        yield from comm.barrier() if False else iter(())
        return None

    res = two_node_cluster.run(rank_fn)
    assert np.array_equal(res.values[0], data)


def test_multiple_outstanding_requests(two_node_cluster):
    msgs = [smooth_f32(10_000, seed=i) for i in range(6)]

    def rank_fn(comm):
        if comm.rank == 0:
            reqs = [comm.isend(m, 1, tag=i) for i, m in enumerate(msgs)]
            yield from waitall(reqs)
            return None
        reqs = [comm.irecv(0, tag=i) for i in range(6)]
        got = yield from waitall(reqs)
        return got

    res = two_node_cluster.run(rank_fn)
    for m, g in zip(msgs, res.values[1]):
        assert np.array_equal(m, g)


def test_bad_rank_rejected(two_node_cluster):
    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(4, np.float32), 5)
        return None

    with pytest.raises(MpiError):
        two_node_cluster.run(rank_fn)


def test_unmatched_recv_deadlocks(two_node_cluster):
    def rank_fn(comm):
        if comm.rank == 1:
            yield from comm.recv(0, tag=1)
        else:
            yield from comm.barrier() if False else iter(())
        return None

    with pytest.raises(DeadlockError):
        two_node_cluster.run(rank_fn)


def test_request_test_and_done(two_node_cluster):
    def rank_fn(comm):
        if comm.rank == 0:
            req = comm.isend(smooth_f32(100), 1)
            before = req.test()
            yield from req.wait()
            return before, req.test()
        got = yield from comm.recv(0)
        return None

    res = two_node_cluster.run(rank_fn)
    before, after = res.values[0]
    assert after is True


# -- compression interplay -------------------------------------------------------

@pytest.mark.parametrize("cfg_name,check", [
    ("mpc", "exact"),
    ("zfp", "close"),
])
def test_compressed_pt2pt_correctness(two_node_cluster, cfg_name, check):
    data = smooth_f32((2 * MiB) // 4)
    cfg = (CompressionConfig.mpc_opt() if cfg_name == "mpc"
           else CompressionConfig.zfp_opt(16))

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, 1)
            return None
        return (yield from comm.recv(0))

    res = two_node_cluster.run(rank_fn, config=cfg)
    got = res.values[1]
    if check == "exact":
        assert np.array_equal(got, data)
    else:
        assert np.abs(got - data).max() < 1e-2


def test_compression_reduces_wire_bytes(two_node_cluster):
    data = np.full((4 * MiB) // 4, 1.5, dtype=np.float32)

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, 1)
            return None
        return (yield from comm.recv(0))

    base = two_node_cluster.run(rank_fn, config=CompressionConfig.disabled())
    comp = two_node_cluster.run(rank_fn, config=CompressionConfig.mpc_opt())
    base_net = base.tracer.total("network")
    comp_net = comp.tracer.total("network")
    assert comp_net < base_net / 5  # constant data: huge ratio
    assert comp.elapsed < base.elapsed  # and it wins end to end


def test_naive_integration_slower_than_baseline(two_node_cluster):
    """Figure 5's core observation."""
    data = smooth_f32((1 * MiB) // 4)

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, 1)
            return None
        return (yield from comm.recv(0))

    base = two_node_cluster.run(rank_fn, config=CompressionConfig.disabled())
    naive = two_node_cluster.run(rank_fn, config=CompressionConfig.naive_zfp(16))
    assert naive.elapsed > 2 * base.elapsed


def test_compressed_header_piggyback_no_extra_messages(two_node_cluster):
    """Compression must not add control messages: the RTS carries the
    header (count network spans: eager=1, rndv = data only since
    control rides latency-only)."""
    data = smooth_f32((1 * MiB) // 4)

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, 1)
            return None
        return (yield from comm.recv(0))

    base = two_node_cluster.run(rank_fn, config=CompressionConfig.disabled())
    comp = two_node_cluster.run(rank_fn, config=CompressionConfig.mpc_opt())
    n_base = len([r for r in base.tracer.records if r.category == "network"])
    n_comp = len([r for r in comp.tracer.records if r.category == "network"])
    assert n_comp == n_base
