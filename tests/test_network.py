"""Unit tests for links, presets and topology."""

import pytest

from repro.errors import ConfigError, NetworkError
from repro.network import (
    IB_EDR,
    IB_FDR,
    IB_HDR,
    NVLINK3,
    PCIE3_X16,
    Link,
    LinkSpec,
    Topology,
    machine_preset,
)
from repro.network.presets import MACHINES, MachinePreset
from repro.sim import Simulator, Tracer
from repro.utils.units import GBps, MiB, us


# -- specs ---------------------------------------------------------------------

def test_paper_bandwidths():
    """Figure 1 / Section I numbers."""
    assert IB_EDR.bandwidth == pytest.approx(GBps(12.5))
    assert IB_HDR.bandwidth == pytest.approx(GBps(25.0))
    assert NVLINK3.bandwidth == pytest.approx(GBps(75.0))
    assert NVLINK3.bandwidth / IB_EDR.bandwidth == pytest.approx(6.0)  # the disparity


def test_serialization_time():
    t = IB_EDR.serialization_time(32 * MiB)
    assert t == pytest.approx(IB_EDR.latency + 32 * MiB / GBps(12.5))


def test_invalid_link_spec():
    with pytest.raises(ConfigError):
        LinkSpec("bad", latency=-1, bandwidth=1e9)
    with pytest.raises(ConfigError):
        LinkSpec("bad", latency=0, bandwidth=0)
    with pytest.raises(ConfigError):
        LinkSpec("bad", latency=0, bandwidth=1e9, lanes=0)


def test_machine_presets_exist():
    for name in ("longhorn", "frontera-liquid", "lassen", "ri2", "sierra"):
        p = machine_preset(name)
        assert p.max_gpus_per_node >= 1
        assert "GB/s" in p.description()
    with pytest.raises(ConfigError):
        machine_preset("summit")


def test_frontera_is_fdr_rtx():
    p = machine_preset("frontera-liquid")
    assert p.inter_link is IB_FDR
    assert p.device.name == "RTX5000"
    assert p.intra_shared  # PCIe host bridge


def test_longhorn_is_nvlink_edr_v100():
    p = machine_preset("longhorn")
    assert p.inter_link is IB_EDR
    assert p.intra_link is NVLINK3
    assert not p.intra_shared


# -- link contention -----------------------------------------------------------------

def test_link_transfer_charges_time(sim):
    link = Link(sim, IB_EDR)

    def proc(sim, link):
        yield from link.transfer(1 * MiB)

    sim.run_process(proc(sim, link))
    assert sim.now == pytest.approx(IB_EDR.serialization_time(1 * MiB))


def test_link_serializes_concurrent_transfers(sim):
    link = Link(sim, IB_EDR)
    ends = []

    def proc(sim, link):
        yield from link.transfer(1 * MiB)
        ends.append(sim.now)

    sim.process(proc(sim, link))
    sim.process(proc(sim, link))
    sim.run()
    one = IB_EDR.serialization_time(1 * MiB)
    assert ends[0] == pytest.approx(one)
    assert ends[1] == pytest.approx(2 * one)


def test_link_negative_size(sim):
    link = Link(sim, IB_EDR)

    def proc(sim, link):
        yield from link.transfer(-1)

    with pytest.raises(NetworkError):
        sim.run_process(proc(sim, link))


# -- topology ----------------------------------------------------------------------

def _topo(machine="longhorn", nodes=2, gpn=2):
    sim = Simulator()
    Tracer(sim)
    return sim, Topology(sim, machine_preset(machine), nodes, gpn)


def test_topology_shape():
    sim, topo = _topo(nodes=3, gpn=2)
    assert topo.n_gpus == 6
    assert topo.node_of(0) == 0
    assert topo.node_of(5) == 2
    assert topo.same_node(0, 1)
    assert not topo.same_node(1, 2)


def test_topology_limits():
    sim = Simulator()
    with pytest.raises(NetworkError):
        Topology(sim, machine_preset("longhorn"), nodes=0, gpus_per_node=1)
    with pytest.raises(NetworkError):
        Topology(sim, machine_preset("ri2"), nodes=2, gpus_per_node=2)  # RI2 has 1 GPU/node


def test_route_intra_vs_inter():
    sim, topo = _topo()
    intra = topo.route(0, 1)
    inter = topo.route(0, 2)
    assert len(intra) == 1 and intra[0].spec is NVLINK3
    assert len(inter) == 2  # uplink + downlink


def test_route_self_empty():
    sim, topo = _topo()
    assert topo.route(3, 3) == []
    assert topo.path_bandwidth(3, 3) == float("inf")


def test_path_bandwidth_bottleneck():
    sim, topo = _topo()
    assert topo.path_bandwidth(0, 1) == pytest.approx(GBps(75.0))
    assert topo.path_bandwidth(0, 2) == pytest.approx(GBps(12.5))


def test_transfer_times_inter_vs_intra():
    sim, topo = _topo()

    def proc(sim, topo, a, b):
        t0 = sim.now
        yield from topo.transfer(a, b, 8 * MiB)
        return sim.now - t0

    t_intra = sim.run_process(proc(sim, topo, 0, 1))
    sim2, topo2 = _topo()
    t_inter = sim2.run_process(proc(sim2, topo2, 0, 2))
    assert t_inter > 4 * t_intra  # EDR vs NVLink disparity


def test_shared_pcie_contends():
    """Frontera-style intra-node bus serializes concurrent transfers."""
    sim, topo = _topo("frontera-liquid", nodes=1, gpn=4)
    ends = []

    def proc(sim, topo, a, b):
        yield from topo.transfer(a, b, 4 * MiB)
        ends.append(sim.now)

    sim.process(proc(sim, topo, 0, 1))
    sim.process(proc(sim, topo, 2, 3))
    sim.run()
    one = PCIE3_X16.serialization_time(4 * MiB)
    assert max(ends) == pytest.approx(2 * one)


def test_nvlink_pairs_independent():
    """Longhorn NVLink pairs do not contend with each other."""
    sim, topo = _topo("longhorn", nodes=1, gpn=4)
    ends = []

    def proc(sim, topo, a, b):
        yield from topo.transfer(a, b, 4 * MiB)
        ends.append(sim.now)

    sim.process(proc(sim, topo, 0, 1))
    sim.process(proc(sim, topo, 2, 3))
    sim.run()
    one = NVLINK3.serialization_time(4 * MiB)
    assert max(ends) == pytest.approx(one)


def test_hca_contention_inter_node():
    """Two ranks on one node sending off-node share the HCA uplink."""
    sim, topo = _topo("longhorn", nodes=2, gpn=2)
    ends = []

    def proc(sim, topo, a, b):
        yield from topo.transfer(a, b, 4 * MiB)
        ends.append(sim.now)

    sim.process(proc(sim, topo, 0, 2))
    sim.process(proc(sim, topo, 1, 3))
    sim.run()
    one = IB_EDR.serialization_time(0) + 4 * MiB / IB_EDR.bandwidth
    assert max(ends) > 1.9 * (4 * MiB / IB_EDR.bandwidth)


def test_zero_byte_transfer():
    sim, topo = _topo()

    def proc(sim, topo):
        yield from topo.transfer(0, 2, 0)

    sim.run_process(proc(sim, topo))
    assert sim.now == pytest.approx(2 * IB_EDR.latency)


def test_graph_structure():
    sim, topo = _topo(nodes=2, gpn=2)
    g = topo.graph()
    kinds = {d["kind"] for _, d in g.nodes(data=True)}
    assert kinds == {"switch", "node", "gpu"}
    assert g.number_of_nodes() == 1 + 2 + 4
    # Fig 1 disparity readable from the graph annotations:
    bw_gpu = g.edges["gpu0", "node0"]["bandwidth"]
    bw_ib = g.edges["node0", "switch"]["bandwidth"]
    assert bw_gpu / bw_ib == pytest.approx(6.0)


# -- hierarchical topologies -------------------------------------------------

def test_hierarchical_presets_exist():
    ft = machine_preset("fat-tree")
    df = machine_preset("dragonfly")
    assert ft.topology_kind == "fat-tree" and ft.nodes_per_group == 16
    assert df.topology_kind == "dragonfly" and df.nodes_per_group == 8
    assert "nodes/group" in ft.description()


def test_node_of_array_matches_scalar():
    sim, topo = _topo(nodes=5, gpn=3)
    assert topo.node_of_array.tolist() == [topo.node_of(g) for g in range(topo.n_gpus)]


def test_route_matches_uncached_on_all_presets():
    """route() memoization must be invisible: every preset, every pair."""
    for name, preset in MACHINES.items():
        nodes = preset.nodes_per_group + 1 if preset.topology_kind != "flat" else 3
        gpn = min(2, preset.max_gpus_per_node)
        sim = Simulator()
        topo = Topology(sim, preset, nodes, gpn)
        for a in range(topo.n_gpus):
            for b in range(topo.n_gpus):
                assert topo.route(a, b) == topo._compute_route(a, b), (name, a, b)
                assert topo.route(a, b) is topo.route(a, b)  # cached object


def test_fat_tree_route_shapes():
    sim = Simulator()
    topo = Topology(sim, machine_preset("fat-tree"), nodes=18, gpus_per_node=2)
    assert topo.n_groups == 2
    # same node: one NVLink hop
    assert len(topo.route(0, 1)) == 1
    # same group, different node: HCA up + down
    in_group = topo.route(0, 2)
    assert [l.label for l in in_group] == ["node0-up", "node1-down"]
    # cross group: up, trunk up, trunk down, down
    cross = topo.route(0, 35)  # gpu on node 17 (group 1)
    assert [l.label for l in cross] == [
        "node0-up", "group0-up", "group1-down", "node17-down"]


def test_dragonfly_route_shapes():
    sim = Simulator()
    topo = Topology(sim, machine_preset("dragonfly"), nodes=10, gpus_per_node=2)
    assert topo.n_groups == 2
    cross = topo.route(0, 19)  # gpu on node 9 (group 1)
    assert [l.label for l in cross] == ["node0-up", "g0->g1", "node9-down"]
    back = topo.route(19, 0)
    assert [l.label for l in back] == ["node9-up", "g1->g0", "node0-down"]
    # the two directions use distinct global links (ordered pairs)
    assert cross[1] is not back[1]


def test_group_of_flat_is_zero():
    sim, topo = _topo(nodes=3, gpn=2)
    assert topo.kind == "flat"
    assert [topo.group_of(n) for n in range(3)] == [0, 0, 0]


def test_hierarchical_preset_validation():
    bad = MachinePreset(
        name="bad-ft", device=machine_preset("fat-tree").device,
        intra_link=NVLINK3, intra_shared=False, inter_link=IB_HDR,
        max_gpus_per_node=4, topology_kind="fat-tree")  # no group fields
    with pytest.raises(NetworkError, match="nodes_per_group"):
        Topology(Simulator(), bad, nodes=4, gpus_per_node=1)
    worse = MachinePreset(
        name="bad-kind", device=machine_preset("fat-tree").device,
        intra_link=NVLINK3, intra_shared=False, inter_link=IB_HDR,
        max_gpus_per_node=4, topology_kind="torus")
    with pytest.raises(NetworkError, match="unknown topology kind"):
        Topology(Simulator(), worse, nodes=4, gpus_per_node=1)


def test_fat_tree_graph_structure():
    sim = Simulator()
    topo = Topology(sim, machine_preset("fat-tree"), nodes=18, gpus_per_node=1)
    g = topo.graph()
    names = set(g.nodes)
    assert {"spine", "group0", "group1"} <= names
    assert "switch" not in names
    assert g.has_edge("group0", "spine") and g.has_edge("spine", "group1")
    assert g.has_edge("node0", "group0") and g.has_edge("node17", "group1")


def test_dragonfly_graph_structure():
    sim = Simulator()
    topo = Topology(sim, machine_preset("dragonfly"), nodes=17, gpus_per_node=1)
    g = topo.graph()
    assert topo.n_groups == 3
    for a in range(3):
        for b in range(3):
            assert g.has_edge(f"group{a}", f"group{b}") == (a != b)
    assert "spine" not in set(g.nodes)


def test_cross_group_transfer_slower_than_in_group():
    def timed(topo_nodes, a, b):
        sim = Simulator()
        topo = Topology(sim, machine_preset("fat-tree"), nodes=topo_nodes,
                        gpus_per_node=1)

        def proc(sim, topo):
            yield from topo.transfer(a, b, 1 * MiB)

        sim.run_process(proc(sim, topo))
        return sim.now

    in_group = timed(18, 0, 1)
    cross_group = timed(18, 0, 17)
    assert cross_group > in_group  # two extra trunk hops of latency
