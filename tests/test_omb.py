"""OMB harness tests: payloads, latency sweeps, collectives."""

import numpy as np
import pytest

from repro.core import CompressionConfig
from repro.errors import ConfigError
from repro.omb import (
    make_payload,
    osu_allgather,
    osu_allreduce,
    osu_alltoall,
    osu_bcast,
    osu_bw,
    osu_latency,
)
from repro.utils.units import KiB, MiB


# -- payloads -----------------------------------------------------------------

def test_omb_payload_constant():
    p = make_payload("omb", 4096)
    assert p.nbytes == 4096
    assert np.all(p == p[0])


def test_random_payload_incompressible():
    from repro.compression import MpcCompressor

    p = make_payload("random", 1 << 16)
    assert MpcCompressor(1).compress(p).ratio < 1.3


def test_wave_payload_compressible():
    from repro.compression import MpcCompressor

    p = make_payload("wave", 1 << 16)
    assert MpcCompressor(1).compress(p).ratio > 1.5


def test_dataset_payload():
    p = make_payload("dataset:msg_sppm", 1 << 18)
    assert p.nbytes == 1 << 18
    uniq = len(np.unique(p)) / p.size
    assert uniq < 0.3  # sppm-like duplication


def test_payload_validation():
    with pytest.raises(ConfigError):
        make_payload("omb", 1023)  # not multiple of 4
    with pytest.raises(ConfigError):
        make_payload("zeros", 1024)
    with pytest.raises(ConfigError):
        make_payload("dataset:unknown", 1024)


# -- latency -----------------------------------------------------------------------

def test_latency_monotone_in_size():
    rows = osu_latency("longhorn", sizes=[256 * KiB, 1 * MiB, 4 * MiB])
    lats = [r.latency for r in rows]
    assert lats == sorted(lats)
    assert rows[0].nbytes == 256 * KiB


def test_latency_close_to_wire_model():
    rows = osu_latency("longhorn", sizes=[4 * MiB])
    wire = 4 * MiB / 12.5e9
    assert rows[0].latency == pytest.approx(wire, rel=0.15)


def test_intra_vs_inter_latency():
    inter = osu_latency("longhorn", sizes=[4 * MiB], inter_node=True)[0].latency
    intra = osu_latency("longhorn", sizes=[4 * MiB], inter_node=False)[0].latency
    assert intra < inter / 3  # NVLink vs EDR


def test_zfp_opt_beats_baseline_inter_node():
    sizes = [8 * MiB]
    base = osu_latency("frontera-liquid", sizes=sizes)[0].latency
    zfp = osu_latency("frontera-liquid", sizes=sizes,
                      config=CompressionConfig.zfp_opt(4))[0].latency
    assert zfp < base


def test_mpc_opt_loses_on_nvlink():
    """Figure 9c: 'Using MPC-OPT has not yielded any benefit' on the
    3-lane NVLink."""
    sizes = [8 * MiB]
    base = osu_latency("longhorn", sizes=sizes, inter_node=False)[0].latency
    mpc = osu_latency("longhorn", sizes=sizes, inter_node=False,
                      config=CompressionConfig.mpc_opt())[0].latency
    assert mpc > base


def test_naive_worse_than_opt():
    sizes = [2 * MiB]
    naive = osu_latency("frontera-liquid", sizes=sizes,
                        config=CompressionConfig.naive_mpc())[0].latency
    opt = osu_latency("frontera-liquid", sizes=sizes,
                      config=CompressionConfig.mpc_opt())[0].latency
    assert opt < naive


def test_latency_breakdown_categories():
    rows = osu_latency("frontera-liquid", sizes=[1 * MiB],
                       config=CompressionConfig.zfp_opt(8))
    bd = rows[0].breakdown
    assert "compression_kernel" in bd
    assert "decompression_kernel" in bd
    assert "network" in bd


# -- bandwidth ---------------------------------------------------------------------

def test_bw_approaches_link_peak():
    rows = osu_bw("longhorn", sizes=[4 * MiB], window=8)
    bw = rows[0].breakdown["bandwidth"]
    assert bw == pytest.approx(12.5e9, rel=0.1)  # Fig 2a: EDR saturated


def test_bw_with_compression_exceeds_wire_peak():
    """Effective (application-level) bandwidth with compression can
    beat the physical wire rate — the whole point of the paper."""
    rows = osu_bw("longhorn", sizes=[8 * MiB], window=4,
                  config=CompressionConfig.zfp_opt(4), payload="omb")
    assert rows[0].breakdown["bandwidth"] > 14e9


# -- collectives ---------------------------------------------------------------------

def test_bcast_runs_and_compression_helps():
    # 4 MiB: past the model's break-even on FDR (see EXPERIMENTS.md —
    # with Table III kernel throughputs the win starts ~2 MiB, later
    # than the paper's 512 KB).
    base = osu_bcast(nodes=4, ppn=2, nbytes=4 * MiB, payload="dataset:msg_sppm")
    comp = osu_bcast(nodes=4, ppn=2, nbytes=4 * MiB, payload="dataset:msg_sppm",
                     config=CompressionConfig.mpc_opt())
    assert comp.latency < base.latency  # Fig 11a: up to 57% on sppm


def test_allgather_zfp_helps():
    base = osu_allgather(nodes=4, ppn=1, nbytes=4 * MiB)
    comp = osu_allgather(nodes=4, ppn=1, nbytes=4 * MiB,
                         config=CompressionConfig.zfp_opt(4))
    assert comp.latency < base.latency


def test_alltoall_and_allreduce_run():
    r1 = osu_alltoall(nodes=2, ppn=2, nbytes=512 * KiB,
                      config=CompressionConfig.zfp_opt(8))
    r2 = osu_allreduce(nodes=2, ppn=2, nbytes=512 * KiB)
    assert r1.latency > 0 and r2.latency > 0
    assert r1.op == "alltoall" and r2.op == "allreduce"
