"""Additional OMB coverage: dataset payloads across sizes, warmup
semantics, SZ/GFC transport configs, breakdown completeness."""

import numpy as np
import pytest

from repro.core import CompressionConfig
from repro.omb import make_payload, osu_bcast, osu_latency
from repro.utils.units import KiB, MiB


@pytest.mark.parametrize("name", ["msg_bt", "msg_sppm", "num_plasma"])
def test_dataset_payload_all_sizes(name):
    for nbytes in (64 * KiB, 1 * MiB):
        p = make_payload(f"dataset:{name}", nbytes)
        assert p.nbytes == nbytes
        assert np.isfinite(p).all()


def test_dataset_payload_preserves_compressibility():
    """Slicing/tiling a dataset to a payload size must keep its ratio
    in the same band (the property Fig 11 depends on)."""
    from repro.compression import MpcCompressor

    small = make_payload("dataset:msg_sppm", 256 * KiB)
    big = make_payload("dataset:msg_sppm", 2 * MiB)
    r_small = MpcCompressor(1).compress(small).ratio
    r_big = MpcCompressor(1).compress(big).ratio
    assert r_small > 3 and r_big > 3


def test_warmup_excludes_first_message_effects():
    """With warmup, ZFP-OPT's one-time attribute query must not appear
    in the measured latency: warm and cold runs of the *measured*
    iteration agree."""
    cfg = CompressionConfig.zfp_opt(8)
    warm = osu_latency("longhorn", sizes=[1 * MiB], config=cfg, warmup=1)[0]
    warmer = osu_latency("longhorn", sizes=[1 * MiB], config=cfg, warmup=3)[0]
    assert warm.latency == pytest.approx(warmer.latency, rel=1e-9)


def test_sz_transport_correct_and_bounded():
    cfg = CompressionConfig(enabled=True, algorithm="sz", sz_error_bound=1e-3)
    data_rows = osu_latency("frontera-liquid", sizes=[1 * MiB], config=cfg,
                            payload="wave")
    assert data_rows[0].latency > 0


def test_sz_transport_roundtrip_bound():
    from repro.mpi.cluster import Cluster
    from repro.network.presets import machine_preset

    data = make_payload("wave", 1 * MiB)
    cfg = CompressionConfig(enabled=True, algorithm="sz", sz_error_bound=1e-2)
    cluster = Cluster(machine_preset("ri2"), nodes=2, gpus_per_node=1)

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, 1)
            return None
        return (yield from comm.recv(0))

    res = cluster.run(rank_fn, config=cfg)
    got = np.asarray(res.values[1])
    assert np.abs(got.astype(np.float64) - data.astype(np.float64)).max() <= 1e-2


def test_gfc_transport_float64_lossless_float32_passthrough():
    from repro.mpi.cluster import Cluster
    from repro.network.presets import machine_preset

    cfg = CompressionConfig(enabled=True, algorithm="gfc")
    cluster = Cluster(machine_preset("ri2"), nodes=2, gpus_per_node=1)
    d64 = np.cumsum(np.ones(200_000)) * 1e-3
    d32 = d64.astype(np.float32)

    def rank_fn(comm, payload):
        if comm.rank == 0:
            yield from comm.send(payload, 1)
            return None
        return (yield from comm.recv(0))

    r64 = cluster.run(rank_fn, config=cfg, args=(d64,))
    assert np.array_equal(np.asarray(r64.values[1]).view(np.uint64), d64.view(np.uint64))
    # float32 is unsupported by GFC: must pass through raw, still exact.
    r32 = cluster.run(rank_fn, config=cfg, args=(d32,))
    assert np.array_equal(np.asarray(r32.values[1]), d32)


def test_bcast_breakdown_has_kernels_when_compressed():
    r = osu_bcast(nodes=2, ppn=2, nbytes=1 * MiB, payload="dataset:msg_sppm",
                  config=CompressionConfig.mpc_opt())
    assert "compression_kernel" in r.breakdown
    assert r.breakdown["network"] > 0
