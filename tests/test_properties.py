"""Cross-cutting property-based tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompressionConfig
from repro.mpi.cluster import Cluster
from repro.network.presets import machine_preset
from repro.sim import Simulator


# -- simulator determinism over random process graphs --------------------------

@settings(max_examples=20, deadline=None)
@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=10.0,
                              allow_nan=False), min_size=1, max_size=30),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_sim_schedule_deterministic(delays, seed):
    def run_once():
        sim = Simulator()
        log = []

        def worker(sim, i, d):
            yield sim.timeout(d)
            log.append((i, sim.now))

        rng = np.random.default_rng(seed)
        order = rng.permutation(len(delays))
        for i in order:
            sim.process(worker(sim, int(i), delays[int(i)]))
        sim.run()
        return log

    assert run_once() == run_once()


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
                min_size=1, max_size=20))
def test_sim_clock_monotone(delays):
    sim = Simulator()
    stamps = []

    def worker(sim, d):
        yield sim.timeout(d)
        stamps.append(sim.now)

    for d in delays:
        sim.process(worker(sim, d))
    sim.run()
    assert stamps == sorted(stamps)
    assert sim.now == pytest.approx(max(delays))


# -- transport invariants ----------------------------------------------------------

@settings(max_examples=8, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200_000),
    algo=st.sampled_from(["mpc", "none"]),
    seed=st.integers(min_value=0, max_value=99),
)
def test_pt2pt_delivery_bit_exact(n, algo, seed):
    """Whatever the size (eager/rendezvous/compressed), lossless
    transport must deliver bit-exact data."""
    rng = np.random.default_rng(seed)
    data = np.cumsum(rng.standard_normal(n)).astype(np.float32)
    cfg = (CompressionConfig.mpc_opt(threshold=64 * 1024)
           if algo == "mpc" else CompressionConfig.disabled())
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, 1)
            return None
        got = yield from comm.recv(0)
        return got

    res = cluster.run(rank_fn, config=cfg)
    got = np.asarray(res.values[1])
    assert np.array_equal(got.view(np.uint32), data.view(np.uint32))


@settings(max_examples=6, deadline=None)
@given(
    nprocs=st.integers(min_value=1, max_value=6),
    root=st.integers(min_value=0, max_value=5),
    n=st.integers(min_value=1, max_value=5000),
)
def test_bcast_delivers_to_all(nprocs, root, n):
    root = root % nprocs
    payload = np.arange(n, dtype=np.float32)
    cluster = Cluster(machine_preset("frontera-liquid"),
                      nodes=max(1, -(-nprocs // 2)), gpus_per_node=2)

    def rank_fn(comm):
        data = payload if comm.rank == root else None
        out = yield from comm.bcast(data, root=root)
        return np.array_equal(np.asarray(out), payload)

    res = cluster.run(rank_fn, nprocs=nprocs)
    assert all(res.values)


@settings(max_examples=6, deadline=None)
@given(
    nprocs=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=50),
)
def test_allreduce_agrees_with_numpy(nprocs, seed):
    rng = np.random.default_rng(seed)
    contributions = [rng.standard_normal(100).astype(np.float32)
                     for _ in range(nprocs)]
    expected = np.sum(contributions, axis=0)
    cluster = Cluster(machine_preset("lassen"),
                      nodes=max(1, -(-nprocs // 4)), gpus_per_node=4)

    def rank_fn(comm):
        out = yield from comm.allreduce(contributions[comm.rank])
        return out

    res = cluster.run(rank_fn, nprocs=nprocs)
    for out in res.values:
        # allreduce algorithms may differ in summation order per rank
        assert np.allclose(np.asarray(out), expected, atol=1e-3)


# -- observability invariants --------------------------------------------------

def _run_traced(n, algo, seed):
    rng = np.random.default_rng(seed)
    data = np.cumsum(rng.standard_normal(n)).astype(np.float32)
    cfg = (CompressionConfig.mpc_opt(threshold=64 * 1024)
           if algo == "mpc" else CompressionConfig.disabled())
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, 1)
            return None
        got = yield from comm.recv(0)
        return got

    return cluster.run(rank_fn, config=cfg)


@settings(max_examples=8, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200_000),
    algo=st.sampled_from(["mpc", "none"]),
    seed=st.integers(min_value=0, max_value=99),
)
def test_trace_spans_well_formed(n, algo, seed):
    """Whatever the protocol path taken, spans never have negative
    duration, children lie within their parents, and merged occupancy
    never exceeds the raw per-category sum."""
    tracer = _run_traced(n, algo, seed).tracer
    by_id = tracer.by_id()
    eps = 1e-12
    for rec in tracer.records:
        assert rec.duration >= 0
        if rec.parent_id is not None and rec.parent_id in by_id:
            parent = by_id[rec.parent_id]
            assert parent.t_start - eps <= rec.t_start
            assert rec.t_end <= parent.t_end + eps
    for cat in tracer.categories():
        assert tracer.busy(cat) <= tracer.total(cat) + eps


@settings(max_examples=8, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200_000),
    algo=st.sampled_from(["mpc", "none"]),
    seed=st.integers(min_value=0, max_value=99),
)
def test_metrics_agree_with_spans(n, algo, seed):
    """Counters and spans are updated from the same measurements, so
    each must be derivable from the other."""
    tracer = _run_traced(n, algo, seed).tracer
    m = tracer.metrics

    wire = [r for r in tracer.records if (r.track or "").startswith("link:")]
    span_bytes = sum(int(r.meta["nbytes"]) * len(r.meta["links"]) for r in wire)
    span_hops = sum(len(r.meta["links"]) for r in wire)
    assert m.counter_total("wire.bytes") == span_bytes
    assert m.counter_total("wire.transfers") == span_hops

    pool_hits = sum(1 for r in tracer.records
                    if r.category == "pool" and r.label == "hit")
    assert m.counter_total("pool.hit") == pool_hits

    # Every rendezvous send records exactly one sender_prepare step;
    # eager/self sends never do (pipelined configs may retry, but these
    # configs are non-pipelined).
    prepares = sum(1 for r in tracer.records
                   if r.category == "pipeline" and r.label == "sender_prepare")
    assert prepares == (m.counter("mpi.sends", protocol="rndv")
                        + m.counter("mpi.sends", protocol="rndv_pipelined"))


# -- latency sanity properties ------------------------------------------------------

@settings(max_examples=10, deadline=None)
@given(nbytes=st.integers(min_value=1, max_value=1 << 22))
def test_latency_bounded_below_by_wire_model(nbytes):
    """No message can beat the physics: latency >= size / bandwidth."""
    nbytes = (nbytes // 4) * 4 or 4
    from repro.omb import osu_latency

    row = osu_latency("longhorn", sizes=[nbytes], warmup=0)[0]
    wire_floor = nbytes / 12.5e9
    assert row.latency >= wire_floor * 0.999
