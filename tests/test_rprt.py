"""RPRT telemetry container: format, round trips, streaming analysis.

Covers the acceptance criteria of the self-describing binary container:

* trace -> RPRT -> JSON -> RPRT is bit-stable and JSON -> RPRT -> JSON
  is byte-identical (``repro trace convert`` is lossless both ways);
* the committed v1 fixture (``tests/data/golden_trace_mpc.rprt``) stays
  readable — on-disk backward compatibility;
* truncated and corrupt-block containers are rejected (CRC-32);
* the mmap reader is deterministic and filters stream block-by-block;
* analysis passes (sanitizer, critical path, CommProfile) produce
  identical findings fed either format;
* trace files are ingested with bounded memory (tracemalloc-measured);
* the container dogfoods its own ``telemetry.*`` metrics.
"""

import json
import struct
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import bench, hostperf
from repro.analysis.critpath import CritPathAnalyzer
from repro.analysis.export import write_chrome_json
from repro.analysis.rprt import (RPRT_MAGIC, RprtError, RprtReader,
                                 RprtWriter, is_rprt, read_snapshot_rprt,
                                 write_snapshot_rprt, write_trace_rprt)
from repro.analysis.traceio import (convert, iter_chrome_file_events,
                                    iter_trace_records, load_trace_records,
                                    read_otherdata, trace_format)
from repro.check.sanitize import TraceSanitizer

DATA = Path(__file__).parent / "data"
GOLDEN_JSON = DATA / "golden_trace_mpc.json"
GOLDEN_RPRT = DATA / "golden_trace_mpc.rprt"


def _golden_result():
    import sys

    sys.path.insert(0, str(Path(__file__).parent))
    from test_trace_export import run_golden_workload

    return run_golden_workload()


# -- container fundamentals --------------------------------------------------

def test_magic_detection(tmp_path):
    assert is_rprt(GOLDEN_RPRT)
    assert not is_rprt(GOLDEN_JSON)
    assert not is_rprt(tmp_path / "missing.rprt")
    assert trace_format(GOLDEN_RPRT) == "rprt"
    assert trace_format(GOLDEN_JSON) == "json"


def test_writer_reader_kv_types(tmp_path):
    w = RprtWriter(block_codec="none")
    w.add_kv("an/int", 42)
    w.add_kv("a/float", 2.5)
    w.add_kv("a/bool", True)
    w.add_kv("a/str", "héllo")
    w.add_kv("a/json", {"k": [1, 2], "n": None})
    w.add_block("col", np.arange(5, dtype="<i8"))
    w.write(tmp_path / "t.rprt")
    with RprtReader(tmp_path / "t.rprt") as r:
        assert r.kv("an/int") == 42 and isinstance(r.kv("an/int"), int)
        assert r.kv("a/float") == 2.5
        assert r.kv("a/bool") is True
        assert r.kv("a/str") == "héllo"
        assert r.kv("a/json") == {"k": [1, 2], "n": None}
        assert r.read("col").tolist() == [0, 1, 2, 3, 4]


def test_blocks_are_aligned_and_crc_checked(tmp_path):
    w = RprtWriter(block_codec="none")
    w.add_block("odd", np.frombuffer(b"xyz", dtype=np.uint8))
    w.add_block("ints", np.arange(7, dtype="<i4"))
    w.write(tmp_path / "t.rprt")
    with RprtReader(tmp_path / "t.rprt") as r:
        for name in r.block_names:
            assert r.block_info(name).offset % 8 == 0
        assert bytes(r.read("odd")) == b"xyz"


def test_block_compression_is_lossless(tmp_path):
    data = np.cumsum(np.ones(4096)) / 3.0  # smooth => compressible
    w = RprtWriter(block_codec="mpc")
    w.add_block("smooth", data.astype("<f8"))
    stats = w.write(tmp_path / "t.rprt")
    assert stats["stored_bytes"] < stats["raw_bytes"]
    with RprtReader(tmp_path / "t.rprt") as r:
        assert r.block_info("smooth").codec == "mpc"
        assert r.read("smooth").tobytes() == data.astype("<f8").tobytes()


def test_incompressible_blocks_fall_back_to_raw(tmp_path):
    rng = np.random.default_rng(7)
    noise = rng.bytes(4096)
    w = RprtWriter(block_codec="mpc")
    w.add_block("noise", np.frombuffer(noise, dtype=np.uint8))
    w.write(tmp_path / "t.rprt")
    with RprtReader(tmp_path / "t.rprt") as r:
        assert r.block_info("noise").codec == ""
        assert bytes(r.read("noise")) == noise


def test_lossy_block_codec_rejected():
    with pytest.raises(RprtError):
        RprtWriter(block_codec="zfp")


def test_bad_magic_rejected(tmp_path):
    p = tmp_path / "bogus.rprt"
    p.write_bytes(b"NOPE" + b"\x00" * 60)
    with pytest.raises(RprtError):
        RprtReader(p)


def test_unsupported_version_rejected(tmp_path):
    p = tmp_path / "future.rprt"
    p.write_bytes(RPRT_MAGIC + struct.pack("<IQQ", 99, 0, 0))
    with pytest.raises(RprtError):
        RprtReader(p)


def test_truncated_container_rejected(tmp_path):
    whole = GOLDEN_RPRT.read_bytes()
    # Cut inside the header and inside the block region.
    for cut in (10, len(whole) // 2):
        p = tmp_path / f"cut{cut}.rprt"
        p.write_bytes(whole[:cut])
        with pytest.raises(RprtError):
            with RprtReader(p) as r:
                for name in r.block_names:
                    r.read(name)


def test_corrupt_block_fails_crc(tmp_path):
    whole = bytearray(GOLDEN_RPRT.read_bytes())
    with RprtReader(GOLDEN_RPRT) as r:
        b = r.block_info("spans/0/ts_us")
    whole[b.offset] ^= 0xFF
    p = tmp_path / "corrupt.rprt"
    p.write_bytes(bytes(whole))
    with RprtReader(p) as r:
        with pytest.raises(RprtError):
            r.read("spans/0/ts_us")
        # verify=False skips the integrity gate (for forensics).
        r.read("spans/0/ts_us", verify=False)


def test_empty_file_rejected(tmp_path):
    p = tmp_path / "empty.rprt"
    p.write_bytes(b"")
    with pytest.raises(RprtError):
        RprtReader(p)


# -- determinism -------------------------------------------------------------

def test_writer_and_reader_are_deterministic(tmp_path):
    # Two fresh same-seed runs (telemetry counters are cumulative per
    # registry, so back-to-back writes of one live tracer differ by
    # design — same *state* must produce the same bytes).
    for name in ("a.rprt", "b.rprt"):
        res = _golden_result()
        write_trace_rprt(res.tracer, tmp_path / name, elapsed=res.elapsed)
    a = (tmp_path / "a.rprt").read_bytes()
    assert a == (tmp_path / "b.rprt").read_bytes()
    with RprtReader(tmp_path / "a.rprt") as r:
        once = [r.read(n).tobytes() for n in r.block_names]
        again = [r.read(n).tobytes() for n in r.block_names]
    assert once == again


# -- round trips -------------------------------------------------------------

def test_json_to_rprt_to_json_byte_identical(tmp_path):
    convert(GOLDEN_JSON, tmp_path / "t.rprt", to="rprt")
    convert(tmp_path / "t.rprt", tmp_path / "back.json", to="json")
    assert (tmp_path / "back.json").read_bytes() == GOLDEN_JSON.read_bytes()


def test_rprt_to_json_to_rprt_bit_stable(tmp_path):
    res = _golden_result()
    write_trace_rprt(res.tracer, tmp_path / "t.rprt", elapsed=res.elapsed)
    convert(tmp_path / "t.rprt", tmp_path / "t.json", to="json")
    convert(tmp_path / "t.json", tmp_path / "back.rprt", to="rprt")
    assert (tmp_path / "t.rprt").read_bytes() == \
        (tmp_path / "back.rprt").read_bytes()


def test_committed_v1_fixture_stays_readable():
    """On-disk backward compatibility: the committed container decodes
    to exactly the committed golden Chrome trace."""
    with RprtReader(GOLDEN_RPRT) as r:
        assert r.version == 1
        assert r.n_spans > 0
        assert r.kv("producer") == "repro"


def test_committed_v1_fixture_converts_to_golden_json(tmp_path):
    convert(GOLDEN_RPRT, tmp_path / "out.json", to="json")
    assert (tmp_path / "out.json").read_bytes() == GOLDEN_JSON.read_bytes()


def test_rprt_smaller_than_chrome_json(tmp_path):
    assert GOLDEN_RPRT.stat().st_size < GOLDEN_JSON.stat().st_size
    res = _golden_result()
    stats = write_trace_rprt(res.tracer, tmp_path / "t.rprt",
                             elapsed=res.elapsed)
    assert stats["ratio"] > 1.0
    assert (tmp_path / "t.rprt").stat().st_size < GOLDEN_JSON.stat().st_size


def test_convert_infers_target_and_rejects_noop(tmp_path):
    stats = convert(GOLDEN_JSON, tmp_path / "t.rprt")  # by extension
    assert stats["format"] == "rprt"
    stats = convert(tmp_path / "t.rprt", tmp_path / "t.out")  # opposite of src
    assert stats["format"] == "json"
    with pytest.raises(RprtError):
        convert(GOLDEN_JSON, tmp_path / "x.json", to="json")
    with pytest.raises(RprtError):
        convert(tmp_path / "missing.json", tmp_path / "y.rprt")


# -- streamed reader ---------------------------------------------------------

def test_spans_match_chrome_records():
    by_rprt = load_trace_records(GOLDEN_RPRT).records
    by_json = load_trace_records(GOLDEN_JSON).records
    assert len(by_rprt) == len(by_json)
    assert by_rprt == by_json


def test_spans_filters():
    with RprtReader(GOLDEN_RPRT) as r:
        everything = list(r.spans())
        gpu = list(r.spans(track="gpu"))
        assert gpu == [s for s in everything if s.track == "gpu"]
        rank0 = list(r.spans(rank=0))
        assert rank0 and rank0 == [s for s in everything if s.rank == 0]
        t0 = everything[len(everything) // 2].t_start
        window = list(r.spans(time_range=(t0, t0 + 20e-6)))
        assert window == [s for s in everything  # inclusive overlap
                          if s.t_start <= t0 + 20e-6 and s.t_end >= t0]
        assert list(r.spans(track="no-such-track")) == []


def test_time_range_skips_whole_groups(tmp_path):
    from repro.sim.trace import Tracer

    tracer = Tracer()
    for i in range(300):
        tracer.span(float(i), float(i) + 0.5, "tick", f"t{i}", rank=0)
    write_trace_rprt(tracer, tmp_path / "t.rprt", spans_per_block=100)
    with RprtReader(tmp_path / "t.rprt") as r:
        assert r.n_span_groups == 3
        got = list(r.spans(time_range=(250.25, 259.75)))
        assert [g.label for g in got] == [f"t{i}" for i in range(250, 260)]


def test_read_otherdata_without_loading_events():
    other = read_otherdata(GOLDEN_RPRT)
    assert other == read_otherdata(GOLDEN_JSON)
    assert other["elapsed_seconds"] > 0
    assert "metrics" in other


def test_iter_chrome_file_events_streams_all_events():
    events = list(iter_chrome_file_events(GOLDEN_JSON))
    doc = json.loads(GOLDEN_JSON.read_text())
    assert events == doc["traceEvents"]


# -- bounded-memory ingestion ------------------------------------------------

def _big_trace(path, n_events: int) -> None:
    meta = [{"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
             "args": {"name": "rank 0"}},
            {"ph": "M", "name": "thread_name", "pid": 0, "tid": 0,
             "args": {"name": "main"}}]

    def events():
        yield from meta
        for i in range(n_events):
            yield {"name": "step", "cat": "pipeline", "ph": "X", "pid": 0,
                   "tid": 0, "ts": float(i), "dur": 0.5,
                   "args": {"span_id": i + 1, "note": "x" * 64}}

    with open(path, "w") as fh:
        write_chrome_json(fh, {"metrics": {}}, events())


def test_streamed_ingestion_bounds_memory(tmp_path):
    """Satellite: the sanitizer path must not json.loads the full text.
    Peak allocation while *streaming* the events stays far below the
    file size (the old full-text parse held text + DOM at once)."""
    p = tmp_path / "big.json"
    _big_trace(p, 20000)
    size = p.stat().st_size
    assert size > 3_000_000

    tracemalloc.start()
    n = 0
    for _ in iter_trace_records(p):
        n += 1
    _, streamed_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert n == 20000
    assert streamed_peak < size / 2

    tracemalloc.start()
    doc = json.loads(p.read_text())
    _, full_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(doc["traceEvents"]) == 20002
    assert streamed_peak < full_peak / 2


# -- analysis parity ---------------------------------------------------------

def _write_tracer_both(tracer, tmp_path, stem):
    """Export one tracer as Chrome JSON and RPRT; return the paths."""
    from repro.analysis.export import write_chrome_trace

    pj, pr = tmp_path / f"{stem}.json", tmp_path / f"{stem}.rprt"
    write_chrome_trace(tracer, pj, elapsed=0.0)
    write_trace_rprt(tracer, pr, elapsed=0.0)
    return pj, pr


def test_empty_trace_round_trips(tmp_path):
    from repro.sim.trace import Tracer

    pj, pr = _write_tracer_both(Tracer(), tmp_path, "empty")
    assert trace_format(pj) == "json" and trace_format(pr) == "rprt"
    for p in (pj, pr):
        assert load_trace_records(p).records == []
        assert read_otherdata(p).get("elapsed_seconds") == 0.0
    # Conversion of a zero-span trace still produces a valid container
    # of the opposite format, also empty.
    convert(pj, tmp_path / "e1.rprt", to="rprt")
    convert(pr, tmp_path / "e1.json", to="json")
    assert load_trace_records(tmp_path / "e1.rprt").records == []
    assert load_trace_records(tmp_path / "e1.json").records == []


def test_single_span_trace_identical_across_formats(tmp_path):
    from repro.sim.trace import Tracer

    tracer = Tracer()
    tracer.span(1e-6, 3e-6, "compute", "lonely", rank=0, track="main",
                seq=7)
    pj, pr = _write_tracer_both(tracer, tmp_path, "one")
    by_json = load_trace_records(pj).records
    by_rprt = load_trace_records(pr).records
    assert len(by_json) == len(by_rprt) == 1
    assert by_json == by_rprt
    rec = by_json[0]
    assert (rec.category, rec.label, rec.rank) == ("compute", "lonely", 0)
    assert rec.meta["seq"] == 7
    assert TraceSanitizer(by_json).check_all() == []


def test_convert_idempotent_on_zero_block_rprt(tmp_path):
    """RPRT -> JSON -> RPRT is bit-stable even when the container holds
    zero span blocks (nothing to re-chunk, strings table is just "")."""
    from repro.sim.trace import Tracer

    first = tmp_path / "z.rprt"
    write_trace_rprt(Tracer(), first, elapsed=0.0)
    convert(first, tmp_path / "z.json", to="json")
    convert(tmp_path / "z.json", tmp_path / "z2.rprt", to="rprt")
    assert (tmp_path / "z2.rprt").read_bytes() == first.read_bytes()


def test_sanitizer_findings_identical_across_formats():
    a = TraceSanitizer.from_trace_file(GOLDEN_RPRT).check_all()
    b = TraceSanitizer.from_trace_file(GOLDEN_JSON).check_all()
    assert [v.as_dict() for v in a] == [v.as_dict() for v in b]


def test_critpath_explain_identical_across_formats():
    a = CritPathAnalyzer(load_trace_records(GOLDEN_RPRT)).explain(n=5)
    b = CritPathAnalyzer(load_trace_records(GOLDEN_JSON)).explain(n=5)
    assert a == b
    assert "critical path" in a.lower() or a  # non-empty report


def test_commprofile_identical_across_formats():
    from repro.analysis import CommProfile

    a = CommProfile.from_trace_file(GOLDEN_RPRT)
    b = CommProfile.from_trace_file(GOLDEN_JSON)
    assert a.as_dict() == b.as_dict()
    assert a.n_messages > 0 and a.total_wire_bytes > 0


# -- telemetry dogfooding ----------------------------------------------------

def test_telemetry_metrics_stamped_into_container(tmp_path):
    res = _golden_result()
    stats = write_trace_rprt(res.tracer, tmp_path / "t.rprt",
                             elapsed=res.elapsed)
    # Live registry updated...
    assert res.tracer.metrics.counter("telemetry.rprt_bytes_written") == \
        stats["stored_bytes"]
    assert res.tracer.metrics.gauge("telemetry.rprt_compress_ratio") == \
        stats["ratio"]
    # ...and the embedded dump self-describes the file.
    with RprtReader(tmp_path / "t.rprt") as r:
        metrics = r.metrics()
    assert metrics["counters"]["telemetry.rprt_bytes_written"] == \
        stats["stored_bytes"]
    assert metrics["gauges"]["telemetry.rprt_compress_ratio"] == \
        stats["ratio"]


def test_commprofile_surfaces_telemetry(tmp_path):
    from repro.analysis import CommProfile

    res = _golden_result()
    write_trace_rprt(res.tracer, tmp_path / "t.rprt", elapsed=res.elapsed)
    prof = CommProfile.from_trace_file(tmp_path / "t.rprt")
    assert prof.telemetry["rprt_bytes_written"] > 0
    assert prof.telemetry["rprt_compress_ratio"] > 1.0
    assert "telemetry container:" in prof.report()
    assert prof.as_dict()["telemetry"]["rprt_compress_ratio"] > 1.0


# -- bench / hostperf snapshots ----------------------------------------------

def _fake_bench_doc():
    return {"schema_version": bench.SCHEMA_VERSION, "label": "t",
            "mode": "quick", "seed": 1,
            "scenarios": {"pt2pt/x": {"kind": "pt2pt", "params": {},
                                      "metrics": {"latency_us[1024]": 12.5},
                                      "counters": {"mpi.sends": 4}}}}


def _fake_hostperf_doc():
    return {"schema_version": hostperf.SCHEMA_VERSION, "label": "t",
            "mode": "quick", "reps": 1,
            "benchmarks": {"codec/x": {"kind": "codec", "params": {},
                                       "metrics": {"encode_s": 0.01,
                                                   "ratio": 2.0}}}}


def test_bench_snapshot_rprt_roundtrip(tmp_path):
    doc = _fake_bench_doc()
    bench.write(doc, tmp_path / "B.rprt")
    assert is_rprt(tmp_path / "B.rprt")
    assert bench.load(tmp_path / "B.rprt") == doc
    # JSON path untouched.
    bench.write(doc, tmp_path / "B.json")
    assert bench.load(tmp_path / "B.json") == doc


def test_hostperf_snapshot_rprt_roundtrip(tmp_path):
    doc = _fake_hostperf_doc()
    hostperf.write(doc, tmp_path / "H.rprt")
    assert hostperf.load(tmp_path / "H.rprt") == doc


def test_snapshot_columnar_blocks(tmp_path):
    write_snapshot_rprt(_fake_bench_doc(), tmp_path / "B.rprt", kind="bench")
    with RprtReader(tmp_path / "B.rprt") as r:
        assert r.kv("snapshot/kind") == "bench"
        # Raw blocks are zero-copy views into the mmap: copy before the
        # reader closes.
        values = r.read("snapshot/value").copy()
        strings = r.strings()
        metrics = [strings[i] for i in r.read("snapshot/metric").copy()]
    # Numeric scalars only, in deterministic order.
    assert metrics == ["latency_us[1024]", "mpi.sends"]
    assert values.tolist() == [12.5, 4.0]


def test_snapshot_histogram_columnar_blocks(tmp_path):
    doc = _fake_bench_doc()
    doc["scenarios"]["pt2pt/x"]["histograms"] = {
        "matching.posted_depth{rank=0}": {
            "count": 3, "sum": 5.0, "min": 1.0, "max": 2.0,
            "p50": 2.0, "p95": 2.0, "p99": 2.0,
            "buckets": {"0": 1, "1": 2}},
        "matching.posted_depth{rank=1}": {
            "count": 1, "sum": 4.0, "min": 4.0, "max": 4.0,
            "p50": 4.0, "p95": 4.0, "p99": 4.0,
            "buckets": {"2": 1}},
    }
    path = tmp_path / "H.rprt"
    write_snapshot_rprt(doc, path, kind="bench")
    # snapshot/json stays authoritative: full round-trip equality,
    # histogram section included.
    assert read_snapshot_rprt(path) == doc
    with RprtReader(path) as r:
        strings = r.strings()
        hsec = [strings[i] for i in r.read("snapshot/hist_section").copy()]
        hmet = [strings[i] for i in r.read("snapshot/hist_metric").copy()]
        hbuck = r.read("snapshot/hist_bucket").copy().tolist()
        hcnt = r.read("snapshot/hist_count").copy().tolist()
    # One columnar row per occupied bucket, per-rank series kept apart.
    assert hsec == ["pt2pt/x"] * 3
    assert hmet == ["matching.posted_depth{rank=0}"] * 2 + \
                   ["matching.posted_depth{rank=1}"]
    assert hbuck == [0, 1, 2]
    assert hcnt == [1, 2, 1]


def test_snapshot_without_histograms_omits_hist_blocks(tmp_path):
    write_snapshot_rprt(_fake_bench_doc(), tmp_path / "B.rprt", kind="bench")
    with RprtReader(tmp_path / "B.rprt") as r:
        with pytest.raises(RprtError):
            r.read("snapshot/hist_bucket")


def test_snapshot_reader_rejects_trace_container():
    with pytest.raises(RprtError):
        read_snapshot_rprt(GOLDEN_RPRT)


def test_snapshot_schema_gate_still_applies(tmp_path):
    doc = dict(_fake_bench_doc(), schema_version=0)
    write_snapshot_rprt(doc, tmp_path / "old.rprt", kind="bench")
    with pytest.raises(ValueError):
        bench.load(tmp_path / "old.rprt")
