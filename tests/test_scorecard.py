"""Scorecard machinery (fast claims only — the full set is a bench)."""

import pytest

from repro.analysis.scorecard import (
    CLAIMS,
    Claim,
    ClaimResult,
    render_scorecard,
    run_scorecard,
)


def test_claims_cover_headlines():
    ids = {c.claim_id for c in CLAIMS}
    assert {"fig5", "fig6", "table3", "fig9a", "fig9b", "fig9c",
            "fig11a", "fig12", "fig14"} <= ids


def test_claim_result_verdicts():
    up = Claim("x", "d", 10.0, "%", lambda: 0.0, ok_threshold=5.0)
    assert not ClaimResult(up, 4.9).shape_ok
    assert ClaimResult(up, 5.0).shape_ok
    down = Claim("y", "d", 0.0, "%", lambda: 0.0, ok_threshold=2.0,
                 higher_is_better=False)
    assert ClaimResult(down, -50.0).shape_ok
    assert not ClaimResult(down, 3.0).shape_ok


def test_run_scorecard_subset_and_render():
    fast = [c for c in CLAIMS if c.claim_id in ("table3",)]
    results = run_scorecard(fast)
    assert len(results) == 1
    assert results[0].shape_ok
    text = render_scorecard(results)
    assert "msg_sppm" in text and "shape-ok" in text


def test_fig9c_claim_is_inverted():
    """The NVLink claim passes when compression loses — guard the
    higher_is_better flag."""
    claim = next(c for c in CLAIMS if c.claim_id == "fig9c")
    assert not claim.higher_is_better
