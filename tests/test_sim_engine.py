"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import AllOf, AnyOf, Interrupt, Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_timeout_advances_clock(sim):
    def proc(sim):
        yield sim.timeout(1.5)
        return "done"

    assert sim.run_process(proc(sim)) == "done"
    assert sim.now == 1.5


def test_timeout_value_passthrough(sim):
    def proc(sim):
        v = yield sim.timeout(0.1, value=42)
        return v

    assert sim.run_process(proc(sim)) == 42


def test_negative_timeout_rejected(sim):
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_zero_delay_timeout_runs(sim):
    def proc(sim):
        yield sim.timeout(0.0)
        return sim.now

    assert sim.run_process(proc(sim)) == 0.0


def test_events_ordered_by_time(sim):
    order = []

    def proc(sim, delay, label):
        yield sim.timeout(delay)
        order.append(label)

    sim.process(proc(sim, 3.0, "c"))
    sim.process(proc(sim, 1.0, "a"))
    sim.process(proc(sim, 2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_broken_by_insertion_order(sim):
    order = []

    def proc(sim, label):
        yield sim.timeout(1.0)
        order.append(label)

    for label in "abcd":
        sim.process(proc(sim, label))
    sim.run()
    assert order == list("abcd")


def test_run_until_stops_mid_schedule(sim):
    fired = []

    def proc(sim):
        yield sim.timeout(10.0)
        fired.append(True)

    sim.process(proc(sim))
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert not fired
    sim.run()
    assert fired


def test_run_until_past_raises(sim):
    def proc(sim):
        yield sim.timeout(2.0)

    sim.process(proc(sim))
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_process_waits_on_process(sim):
    def inner(sim):
        yield sim.timeout(2.0)
        return "inner-result"

    def outer(sim):
        val = yield sim.process(inner(sim))
        return val

    assert sim.run_process(outer(sim)) == "inner-result"
    assert sim.now == 2.0


def test_event_succeed_wakes_waiter(sim):
    ev = sim.event()

    def waiter(sim, ev):
        val = yield ev
        return val

    def trigger(sim, ev):
        yield sim.timeout(1.0)
        ev.succeed("payload")

    p = sim.process(waiter(sim, ev))
    sim.process(trigger(sim, ev))
    sim.run()
    assert p.value == "payload"


def test_event_double_succeed_raises(sim):
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_propagates_into_process(sim):
    ev = sim.event()

    def waiter(sim, ev):
        try:
            yield ev
        except ValueError as exc:
            return f"caught {exc}"

    p = sim.process(waiter(sim, ev))
    ev.fail(ValueError("boom"))
    sim.run()
    assert p.value == "caught boom"


def test_unhandled_process_exception_surfaces(sim):
    def bad(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("kaput")

    sim.process(bad(sim))
    with pytest.raises(RuntimeError, match="kaput"):
        sim.run()


def test_failed_event_with_no_waiter_raises_at_run_end(sim):
    ev = sim.event()
    ev.fail(RuntimeError("lost failure"))
    with pytest.raises(RuntimeError, match="lost failure"):
        sim.run()


def test_defused_failure_not_reraised(sim):
    ev = sim.event()
    ev.fail(RuntimeError("handled"))
    ev.defuse()
    sim.run()  # no raise


def test_event_value_before_trigger_raises(sim):
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_allof_collects_values(sim):
    def worker(sim, delay, val):
        yield sim.timeout(delay)
        return val

    def main(sim):
        procs = [sim.process(worker(sim, d, d * 10)) for d in (3, 1, 2)]
        results = yield sim.all_of(procs)
        return [results[i] for i in range(3)]

    assert sim.run_process(main(sim)) == [30, 10, 20]
    assert sim.now == 3


def test_anyof_returns_first(sim):
    def worker(sim, delay, val):
        yield sim.timeout(delay)
        return val

    def main(sim):
        procs = [sim.process(worker(sim, d, d) ) for d in (5, 1, 3)]
        results = yield sim.any_of(procs)
        return results

    results = sim.run_process(main(sim))
    assert 1 in results.values()
    assert sim.now <= 5  # remaining procs may still finish after


def test_condition_operators(sim):
    e1, e2 = sim.event(), sim.event()
    both = e1 & e2
    either = e1 | e2
    assert isinstance(both, AllOf)
    assert isinstance(either, AnyOf)
    e1.succeed("x")
    e2.succeed("y")
    sim.run()
    assert both.triggered and either.triggered


def test_empty_allof_triggers_immediately(sim):
    cond = sim.all_of([])
    assert cond.triggered


def test_interrupt_reaches_process(sim):
    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
            return "slept"
        except Interrupt as i:
            return f"interrupted:{i.cause}"

    p = sim.process(sleeper(sim))

    def interrupter(sim, p):
        yield sim.timeout(1.0)
        p.interrupt("wakeup")

    sim.process(interrupter(sim, p))
    sim.run()
    assert p.value == "interrupted:wakeup"
    assert sim.now < 100.0 or True  # heap may hold the dead timeout


def test_interrupt_finished_process_raises(sim):
    def quick(sim):
        yield sim.timeout(0.1)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_process_yielding_non_event_raises(sim):
    def bad(sim):
        yield 42

    sim.process(bad(sim))
    with pytest.raises(SimulationError, match="must yield Event"):
        sim.run()


def test_process_requires_generator(sim):
    with pytest.raises(SimulationError, match="generator"):
        sim.process(lambda: None)


def test_cross_simulator_event_rejected():
    s1, s2 = Simulator(), Simulator()

    def proc(s1, s2):
        yield s2.timeout(1.0)

    s1.process(proc(s1, s2))
    with pytest.raises(SimulationError, match="different Simulator"):
        s1.run()


def test_run_process_deadlock_detection(sim):
    def stuck(sim):
        yield sim.event()  # never triggered

    with pytest.raises(DeadlockError):
        sim.run_process(stuck(sim))


def test_step_on_empty_schedule_raises(sim):
    with pytest.raises(SimulationError):
        sim.step()


def test_peek(sim):
    assert sim.peek() == float("inf")
    sim.timeout(4.2)
    assert sim.peek() == 4.2


def test_nested_yield_from_subroutines(sim):
    def sub(sim, d):
        yield sim.timeout(d)
        return d * 2

    def main(sim):
        a = yield from sub(sim, 1.0)
        b = yield from sub(sim, 2.0)
        return a + b

    assert sim.run_process(main(sim)) == 6.0
    assert sim.now == 3.0


def test_many_processes_deterministic():
    def worker(sim, i, log):
        yield sim.timeout(i % 7 * 0.1)
        log.append(i)

    logs = []
    for _ in range(2):
        s = Simulator()
        log = []
        for i in range(200):
            s.process(worker(s, i, log))
        s.run()
        logs.append(log)
    assert logs[0] == logs[1]


# -- calendar-scheduler edge cases ------------------------------------------


def test_cancelled_events_skipped_within_batch(sim):
    order = []

    def proc(sim, label):
        yield sim.timeout(1.0)
        order.append(label)

    timers = []

    def canceller(sim):
        # Cancel b and d before their shared t=1.0 bucket drains.
        yield sim.timeout(0.5)
        timers[1].cancel()
        timers[3].cancel()

    def worker(sim, label, timer):
        try:
            yield timer
            order.append(label)
        except Interrupt:  # pragma: no cover - not used
            pass

    for label in "abcd":
        t = sim.timeout(1.0)
        timers.append(t)
        sim.process(worker(sim, label, t))
    sim.process(canceller(sim))
    sim.run()
    assert order == ["a", "c"]


def test_cancelled_only_bucket_does_not_advance_clock(sim):
    def proc(sim):
        yield sim.timeout(3.0)
        return sim.now

    guard = sim.timeout(5.0)
    p = sim.process(proc(sim))
    guard.cancel()
    sim.run()
    assert p.value == 3.0
    assert sim.now == 3.0  # the cancelled t=5 bucket never ticks the clock


def test_cancel_interleaved_with_same_timestamp_spawns(sim):
    """Events scheduled *into* the batch currently draining still run at
    the same timestamp, after the batch, even when cancellations punch
    holes in the batch mid-sweep."""
    order = []

    def late(sim, label):
        order.append((sim.now, label))
        return
        yield  # pragma: no cover

    t_first = sim.timeout(1.0)   # position 0 of the t=1.0 bucket
    victim = sim.timeout(1.0)    # position 1: cancelled mid-sweep

    def spawner(sim, victim):
        yield t_first
        victim.cancel()
        sim.process(late(sim, "spawned"))
        order.append((sim.now, "spawner"))

    def waiter(sim, victim):
        try:
            yield victim
            order.append((sim.now, "victim"))  # pragma: no cover
        except Interrupt:  # pragma: no cover
            pass

    sim.process(spawner(sim, victim))
    sim.process(waiter(sim, victim))
    sim.run()
    assert order == [(1.0, "spawner"), (1.0, "spawned")]


def test_anyof_defuses_same_batch_late_failure(sim):
    e1, e2 = sim.event(), sim.event()

    def main(sim):
        res = yield sim.any_of([e1, e2])
        return list(res.values())

    def trigger(sim):
        yield sim.timeout(1.0)
        e1.succeed("winner")
        e2.fail(RuntimeError("late loser"))

    p = sim.process(main(sim))
    sim.process(trigger(sim))
    sim.run()  # the losing failure lands in the same bucket; no re-raise
    assert p.value == ["winner"]


def test_allof_defuses_same_batch_second_failure(sim):
    e1, e2 = sim.event(), sim.event()

    def main(sim):
        try:
            yield sim.all_of([e1, e2])
        except RuntimeError as exc:
            return f"caught {exc}"

    def trigger(sim):
        yield sim.timeout(1.0)
        e1.fail(RuntimeError("first"))
        e2.fail(RuntimeError("second"))

    p = sim.process(main(sim))
    sim.process(trigger(sim))
    sim.run()  # second failure must be defused by the already-failed cond
    assert p.value == "caught first"


def test_interrupt_before_first_resume_defuses_stale_wakeup(sim):
    """Regression: a process interrupted to death before its pending
    target fires must not crash when that target later dispatches."""
    def victim(sim):
        try:
            yield sim.timeout(5.0)
            return "slept"  # pragma: no cover
        except Interrupt:
            return "died"

    p = sim.process(victim(sim))
    p.interrupt("early")
    sim.run()  # the t=5 timeout still fires on the dead generator
    assert p.value == "died"


def test_micro_event_freelist_reuse():
    sim = Simulator()

    def noop(sim):
        return
        yield  # pragma: no cover

    sim.process(noop(sim))
    sim.run()
    assert len(sim._micro_free) == 1
    recycled = sim._micro_free[-1]
    sim.process(noop(sim))
    assert not sim._micro_free  # spawn took the pooled event back out
    sim.run()
    assert sim._micro_free[-1] is recycled


def test_step_peek_through_same_time_batch(sim):
    hits = []

    def proc(sim, label):
        yield sim.timeout(1.0)
        hits.append(label)

    sim.process(proc(sim, "a"))
    sim.process(proc(sim, "b"))

    def late(sim):
        yield sim.timeout(2.0)
        hits.append("late")

    sim.process(late(sim))
    assert sim.peek() == 0.0  # init events
    while sim.peek() == 0.0:
        sim.step()
    assert sim.peek() == 1.0
    sim.step()
    assert sim.peek() == 1.0  # second event of the t=1 batch still due
    while sim.peek() == 1.0:
        sim.step()
    assert hits == ["a", "b"]
    assert sim.peek() == 2.0
    sim.run()
    assert hits == ["a", "b", "late"]
    assert sim.now == 2.0


def _storm(sim, n_procs=1024):
    """Spawn/interrupt storm: every rank spawns a sleeper, half get
    interrupted, an AnyOf race decides each rank's value."""
    values = {}

    def sleeper(sim, i):
        try:
            yield sim.timeout(10.0 + i * 1e-6)
            return "slept"
        except Interrupt as itr:
            return f"hit:{itr.cause}"

    def rank(sim, i):
        s = sim.process(sleeper(sim, i))
        yield sim.timeout((i % 13) * 1e-3)
        if i % 2:
            s.interrupt(i)
        res = yield sim.any_of([s, sim.timeout(20.0)])
        values[i] = next(iter(res.values()))

    for i in range(n_procs):
        sim.process(rank(sim, i))
    sim.run()
    return values, sim.now


def test_storm_bare_matches_instrumented_and_repeats():
    from repro.sim.trace import Tracer

    bare1, now1 = _storm(Simulator())
    bare2, now2 = _storm(Simulator())
    s3 = Simulator()
    tracer = Tracer(s3)
    inst, now3 = _storm(s3)
    assert bare1 == bare2 == inst
    assert now1 == now2 == now3
    assert len(bare1) == 1024
    assert tracer.event_count > 0
