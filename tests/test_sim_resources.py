"""Unit tests for Resource, Store and TokenPool."""

import pytest

from repro.errors import SimulationError
from repro.sim import Resource, Simulator, Store, TokenPool


def test_resource_grants_up_to_capacity(sim):
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered and not r3.triggered
    assert res.count == 2 and res.queued == 1


def test_resource_release_admits_next(sim):
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert not r2.triggered
    res.release(r1)
    assert r2.triggered
    assert res.count == 1


def test_resource_release_without_request_raises(sim):
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_bad_capacity(sim):
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_serializes_processes(sim):
    res = Resource(sim, capacity=1)
    spans = []

    def worker(sim, res, label):
        req = res.request()
        yield req
        start = sim.now
        yield sim.timeout(1.0)
        res.release(req)
        spans.append((label, start, sim.now))

    for label in "ab":
        sim.process(worker(sim, res, label))
    sim.run()
    (l1, s1, e1), (l2, s2, e2) = spans
    assert s2 >= e1  # no overlap


def test_resource_fifo_order(sim):
    res = Resource(sim, capacity=1)
    order = []

    def worker(sim, res, label):
        req = res.request()
        yield req
        order.append(label)
        yield sim.timeout(0.1)
        res.release(req)

    for label in "abcd":
        sim.process(worker(sim, res, label))
    sim.run()
    assert order == list("abcd")


# -- Store ----------------------------------------------------------------

def test_store_put_then_get(sim):
    st = Store(sim)
    st.put("x")
    ev = st.get()
    assert ev.triggered and ev.value == "x"


def test_store_get_blocks_until_put(sim):
    st = Store(sim)

    def getter(sim, st):
        item = yield st.get()
        return item

    def putter(sim, st):
        yield sim.timeout(1.0)
        st.put("late")

    p = sim.process(getter(sim, st))
    sim.process(putter(sim, st))
    sim.run()
    assert p.value == "late"


def test_store_fifo(sim):
    st = Store(sim)
    for i in range(5):
        st.put(i)
    got = [st.get().value for _ in range(5)]
    assert got == list(range(5))


def test_store_bounded_put_blocks(sim):
    st = Store(sim, capacity=1)
    ev1 = st.put("a")
    ev2 = st.put("b")
    assert ev1.triggered and not ev2.triggered
    g = st.get()
    assert g.value == "a"
    assert ev2.triggered  # freed slot admits the queued put
    assert st.get().value == "b"


def test_store_try_get(sim):
    st = Store(sim)
    ok, item = st.try_get()
    assert not ok and item is None
    st.put(7)
    ok, item = st.try_get()
    assert ok and item == 7


def test_store_len(sim):
    st = Store(sim)
    assert len(st) == 0
    st.put(1)
    st.put(2)
    assert len(st) == 2


def test_store_bad_capacity(sim):
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


def test_store_put_wakes_waiting_getter_directly(sim):
    st = Store(sim)
    g = st.get()
    assert not g.triggered
    st.put("direct")
    assert g.triggered and g.value == "direct"
    assert len(st) == 0  # item went straight to the getter


# -- TokenPool ---------------------------------------------------------------

def test_tokenpool_multi_acquire(sim):
    pool = TokenPool(sim, capacity=10)
    a = pool.acquire(6)
    b = pool.acquire(4)
    assert a.triggered and b.triggered
    assert pool.available == 0


def test_tokenpool_blocks_when_insufficient(sim):
    pool = TokenPool(sim, capacity=10)
    pool.acquire(8)
    b = pool.acquire(4)
    assert not b.triggered
    pool.release(8)
    assert b.triggered
    assert pool.available == 6


def test_tokenpool_fifo_no_starvation(sim):
    """A large request at the head blocks later small ones (FIFO)."""
    pool = TokenPool(sim, capacity=10)
    pool.acquire(8)
    big = pool.acquire(10)
    small = pool.acquire(1)
    assert not big.triggered and not small.triggered
    pool.release(8)
    assert big.triggered and not small.triggered
    pool.release(10)
    assert small.triggered


def test_tokenpool_over_release_raises(sim):
    pool = TokenPool(sim, capacity=4)
    with pytest.raises(SimulationError):
        pool.release(1)


def test_tokenpool_acquire_out_of_range(sim):
    pool = TokenPool(sim, capacity=4)
    with pytest.raises(SimulationError):
        pool.acquire(5)
    with pytest.raises(SimulationError):
        pool.acquire(0)


def test_tokenpool_models_concurrent_kernels(sim):
    """Two 40-token kernels on an 80-token device overlap; a third
    queues — the SM-occupancy mechanism behind multi-stream MPC-OPT."""
    pool = TokenPool(sim, capacity=80)
    timeline = []

    def kernel(sim, pool, blocks, dur, label):
        req = pool.acquire(blocks)
        yield req
        t0 = sim.now
        yield sim.timeout(dur)
        pool.release(blocks)
        timeline.append((label, t0, sim.now))

    for i in range(3):
        sim.process(kernel(sim, pool, 40, 1.0, f"k{i}"))
    sim.run()
    by_label = {l: (s, e) for l, s, e in timeline}
    assert by_label["k0"] == (0.0, 1.0)
    assert by_label["k1"] == (0.0, 1.0)
    assert by_label["k2"] == (1.0, 2.0)
