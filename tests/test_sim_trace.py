"""Unit tests for the tracer."""

import pytest

from repro.sim import Simulator, Tracer


def test_span_recording():
    tr = Tracer()
    tr.span(0.0, 1.0, "network", "msg1", nbytes=100)
    tr.span(2.0, 2.5, "network", "msg2")
    assert tr.total("network") == pytest.approx(1.5)
    assert tr.records[0].meta["nbytes"] == 100


def test_span_duration_property():
    tr = Tracer()
    tr.span(1.0, 3.5, "k")
    assert tr.records[0].duration == pytest.approx(2.5)


def test_negative_span_rejected():
    tr = Tracer()
    with pytest.raises(ValueError):
        tr.span(2.0, 1.0, "x")


def test_total_all_categories():
    tr = Tracer()
    tr.span(0, 1, "a")
    tr.span(0, 2, "b")
    assert tr.total() == pytest.approx(3.0)


def test_busy_merges_overlaps():
    tr = Tracer()
    tr.span(0.0, 2.0, "kernel")
    tr.span(1.0, 3.0, "kernel")  # overlaps
    tr.span(5.0, 6.0, "kernel")  # disjoint
    assert tr.total("kernel") == pytest.approx(5.0)  # raw sum
    assert tr.busy("kernel") == pytest.approx(4.0)   # merged occupancy


def test_busy_empty_category():
    tr = Tracer()
    assert tr.busy("nothing") == 0.0


def test_breakdown_and_categories():
    tr = Tracer()
    tr.span(0, 1, "b")
    tr.span(0, 2, "a")
    tr.span(2, 3, "a")
    assert tr.categories() == ["a", "b"]
    assert tr.breakdown() == {"a": pytest.approx(3.0), "b": pytest.approx(1.0)}


def test_clear():
    tr = Tracer()
    tr.span(0, 1, "x")
    tr.clear()
    assert tr.records == [] and tr.event_count == 0


def test_tracer_attaches_to_simulator():
    sim = Simulator()
    tr = Tracer(sim)
    assert sim.tracer is tr

    def proc(sim):
        yield sim.timeout(1.0)

    sim.run_process(proc(sim))
    assert tr.event_count > 0
