"""Unit tests for the tracer."""

import pytest

from repro.sim import Simulator, Tracer


def test_span_recording():
    tr = Tracer()
    tr.span(0.0, 1.0, "network", "msg1", nbytes=100)
    tr.span(2.0, 2.5, "network", "msg2")
    assert tr.total("network") == pytest.approx(1.5)
    assert tr.records[0].meta["nbytes"] == 100


def test_span_duration_property():
    tr = Tracer()
    tr.span(1.0, 3.5, "k")
    assert tr.records[0].duration == pytest.approx(2.5)


def test_negative_span_rejected():
    tr = Tracer()
    with pytest.raises(ValueError):
        tr.span(2.0, 1.0, "x")


def test_total_all_categories():
    tr = Tracer()
    tr.span(0, 1, "a")
    tr.span(0, 2, "b")
    assert tr.total() == pytest.approx(3.0)


def test_busy_merges_overlaps():
    tr = Tracer()
    tr.span(0.0, 2.0, "kernel")
    tr.span(1.0, 3.0, "kernel")  # overlaps
    tr.span(5.0, 6.0, "kernel")  # disjoint
    assert tr.total("kernel") == pytest.approx(5.0)  # raw sum
    assert tr.busy("kernel") == pytest.approx(4.0)   # merged occupancy


def test_busy_empty_category():
    tr = Tracer()
    assert tr.busy("nothing") == 0.0


def test_breakdown_and_categories():
    tr = Tracer()
    tr.span(0, 1, "b")
    tr.span(0, 2, "a")
    tr.span(2, 3, "a")
    assert tr.categories() == ["a", "b"]
    assert tr.breakdown() == {"a": pytest.approx(3.0), "b": pytest.approx(1.0)}


def test_clear():
    tr = Tracer()
    tr.span(0, 1, "x")
    tr.clear()
    assert tr.records == [] and tr.event_count == 0


def test_tracer_attaches_to_simulator():
    sim = Simulator()
    tr = Tracer(sim)
    assert sim.tracer is tr

    def proc(sim):
        yield sim.timeout(1.0)

    sim.run_process(proc(sim))
    assert tr.event_count > 0


# -- hierarchical spans -------------------------------------------------------

def test_begin_end_explicit_times():
    tr = Tracer()
    h = tr.begin("pipeline", "rts", rank=2, track="main", t=1.0, seq=5)
    rec = tr.end(h, t=2.5, dst=1)
    assert rec.duration == pytest.approx(1.5)
    assert rec.rank == 2 and rec.track == "main"
    assert rec.meta == {"seq": 5, "dst": 1}
    assert rec.parent_id is None
    assert tr.records == [rec]


def test_end_none_is_noop():
    tr = Tracer()
    assert tr.end(None) is None
    assert tr.records == []


def test_end_twice_raises():
    tr = Tracer()
    h = tr.begin("x", t=0.0)
    tr.end(h, t=1.0)
    with pytest.raises(ValueError):
        tr.end(h, t=2.0)


def test_end_before_start_raises():
    tr = Tracer()
    h = tr.begin("x", t=5.0)
    with pytest.raises(ValueError):
        tr.end(h, t=4.0)


def test_detached_tracer_needs_explicit_time():
    tr = Tracer()
    with pytest.raises(ValueError):
        tr.begin("x")


def test_retroactive_span_nests_under_open():
    tr = Tracer()
    outer = tr.begin("pipeline", "sender_prepare", t=0.0)
    leaf = tr.span(0.2, 0.5, "kernel", "mpc")
    inner = tr.begin("pipeline", "inner", t=0.6)
    leaf2 = tr.span(0.7, 0.8, "kernel", "mpc2")
    tr.end(inner, t=0.9)
    tr.end(outer, t=1.0)
    assert leaf.parent_id == outer.span_id
    assert leaf2.parent_id == inner.span_id
    by_id = tr.by_id()
    assert by_id[inner.span_id].parent_id == outer.span_id
    assert {r.span_id for r in tr.children_of(outer.span_id)} == {
        leaf.span_id, inner.span_id}


def test_spans_parent_within_sim_processes():
    """Spans recorded by different processes don't nest into each
    other; a process spawned under an open span inherits it."""
    sim = Simulator()
    tr = Tracer(sim)
    got = {}

    def child(sim):
        yield sim.timeout(0.5)
        got["child_leaf"] = tr.span(sim.now - 0.1, sim.now, "kernel", "k")

    def parent(sim):
        with tr.open_span("pipeline", "outer", rank=0) as h:
            got["outer"] = h
            sim.process(child(sim))
            yield sim.timeout(2.0)

    def bystander(sim):
        yield sim.timeout(1.0)
        got["stranger"] = tr.span(sim.now - 0.1, sim.now, "kernel", "other")

    sim.process(parent(sim))
    sim.process(bystander(sim))
    sim.run()
    assert got["child_leaf"].parent_id == got["outer"].span_id
    assert got["stranger"].parent_id is None


def test_clear_resets_hierarchy_and_metrics():
    tr = Tracer()
    tr.begin("x", t=0.0)
    tr.metrics.inc("wire.bytes", 10, link="l")
    tr.clear()
    assert tr.records == []
    assert tr.current_span() is None
    assert tr.metrics.counter_total("wire.bytes") == 0


def test_dag_accessors():
    """children_index / roots / descendants_of / ancestors_of agree
    with the per-call children_of view."""
    tr = Tracer()
    a = tr.begin("pipeline", "a", t=0.0)
    b = tr.begin("kernel", "b", t=0.1)
    tr.span(0.2, 0.3, "memory", "leaf")
    tr.end(b, t=0.4)
    tr.end(a, t=0.5)
    tr.span(0.6, 0.7, "network", "root2")

    recs = {r.label: r for r in tr.records}
    index = tr.children_index()
    assert {r.label for r in index[None]} == {"a", "root2"}  # roots key
    assert {r.label for r in tr.roots()} == {"a", "root2"}
    assert index[recs["a"].span_id] == tr.children_of(recs["a"].span_id)

    desc = tr.descendants_of(recs["a"].span_id)
    assert {r.label for r in desc} == {"b", "leaf"}
    assert tr.descendants_of(recs["a"].span_id, index) == desc
    anc = tr.ancestors_of(recs["leaf"].span_id)
    assert [r.label for r in anc] == ["b", "a"]  # innermost first
    assert tr.ancestors_of(recs["root2"].span_id) == []
