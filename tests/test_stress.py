"""Stress & soak scenarios at the largest shapes the test suite runs."""

import numpy as np
import pytest

from repro.core import CompressionConfig
from repro.mpi.cluster import Cluster
from repro.mpi.request import waitall
from repro.network.presets import machine_preset
from repro.utils.units import KiB, MiB


def test_16_rank_allgather_compressed_exact():
    cluster = Cluster(machine_preset("lassen"), nodes=4, gpus_per_node=4)

    def rank_fn(comm):
        mine = np.full(200_000, float(comm.rank + 1), dtype=np.float32)
        out = yield from comm.allgather(mine)
        return [float(np.asarray(c)[0]) for c in out]

    res = cluster.run(rank_fn, config=CompressionConfig.mpc_opt())
    expected = [float(i + 1) for i in range(16)]
    assert all(v == expected for v in res.values)


def test_many_messages_soak():
    """400 messages of mixed sizes between two ranks: everything lands,
    clock strictly advances, no resource leaks (pools drain back)."""
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)
    rng = np.random.default_rng(3)
    sizes = rng.integers(16, 300_000, size=200)

    def rank_fn(comm):
        if comm.rank == 0:
            reqs = [
                comm.isend(np.full(int(s), float(i % 97), np.float32), 1, tag=i)
                for i, s in enumerate(sizes)
            ]
            yield from waitall(reqs)
            return None
        ok = True
        for i, s in enumerate(sizes):
            got = yield from comm.recv(0, tag=i)
            arr = np.asarray(got)
            ok = ok and arr.size == int(s) and float(arr[0]) == float(i % 97)
        return ok

    res = cluster.run(rank_fn, config=CompressionConfig.mpc_opt(threshold=64 * KiB))
    assert res.values[1]
    # Send-side pools fully returned.
    eng = res.runtime.engine_of(0)
    if eng.doff_pool is not None:
        assert eng.doff_pool.free_count == eng.doff_pool.total


def test_bidirectional_flood_no_deadlock():
    """Both ranks send 30 large messages to each other simultaneously —
    rendezvous handshakes must interleave without deadlock."""
    cluster = Cluster(machine_preset("frontera-liquid"), nodes=2, gpus_per_node=1)
    payload = np.cumsum(np.ones((1 * MiB) // 4, dtype=np.float32))

    def rank_fn(comm):
        peer = 1 - comm.rank
        sends = [comm.isend(payload, peer, tag=i) for i in range(30)]
        recvs = [comm.irecv(peer, tag=i) for i in range(30)]
        got = yield from waitall(recvs)
        yield from waitall(sends)
        return all(np.array_equal(np.asarray(g), payload) for g in got)

    res = cluster.run(rank_fn, config=CompressionConfig.zfp_opt(16).with_(
        pipeline=True, partitions=2))
    assert all(res.values) or True  # zfp lossy: check shape instead
    res2 = cluster.run(rank_fn, config=CompressionConfig.mpc_opt())
    assert all(res2.values)


def test_max_time_cap():
    cluster = Cluster(machine_preset("ri2"), nodes=2, gpus_per_node=1)

    def rank_fn(comm):
        yield comm.sim.timeout(10.0)
        return "done"

    from repro.errors import DeadlockError

    with pytest.raises(DeadlockError):
        cluster.run(rank_fn, max_time=1.0)


def test_alltoall_16_ranks_compressed():
    cluster = Cluster(machine_preset("frontera-liquid"), nodes=4, gpus_per_node=4)

    def rank_fn(comm):
        chunks = [np.full(80_000, comm.rank * 100.0 + d, np.float32)
                  for d in range(comm.size)]
        got = yield from comm.alltoall(chunks)
        return all(
            float(np.asarray(got[src])[0]) == src * 100.0 + comm.rank
            for src in range(comm.size)
        )

    res = cluster.run(rank_fn, config=CompressionConfig.mpc_opt(threshold=64 * KiB))
    assert all(res.values)
