"""Chrome-trace export: structure checks and a golden-trace regression.

The golden file (``tests/data/golden_trace_mpc.json``) is the full
exported trace of a fixed 2-rank rendezvous MPC-OPT send.  The
comparison is over the trace *skeleton* — span names, categories, track
assignment and parent nesting — so legitimate performance-model
recalibration (which shifts timestamps) does not break the test, while
any change to what is traced or how spans nest does.

Regenerate after an intentional instrumentation change with::

    PYTHONPATH=src python tests/make_golden_trace.py
"""

import json
from pathlib import Path

import numpy as np

from repro.analysis import to_chrome_trace
from repro.analysis.export import NETWORK_PID
from repro.core import CompressionConfig
from repro.mpi.cluster import Cluster
from repro.mpi.comm import PIPELINE_STEPS
from repro.network.presets import machine_preset

GOLDEN = Path(__file__).parent / "data" / "golden_trace_mpc.json"


def run_golden_workload():
    """2-rank inter-node rendezvous send, 256 KiB float32, MPC-OPT."""
    cluster = Cluster(machine_preset("longhorn"), nodes=2, gpus_per_node=1)
    data = np.linspace(0.0, 1.0, 65536, dtype=np.float32)

    def rank_fn(comm):
        if comm.rank == 0:
            yield from comm.send(data, 1, tag=3)
            return None
        got = yield from comm.recv(0, tag=3)
        return np.asarray(got).nbytes

    return cluster.run(rank_fn, config=CompressionConfig.mpc_opt())


def export_golden_doc():
    res = run_golden_workload()
    return to_chrome_trace(res.tracer, elapsed=res.elapsed)


def _threads(doc):
    return {(e["pid"], e["tid"]): e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"}


def _skeleton(doc):
    """(pid, track, category, name, parent name) for every X event."""
    threads = _threads(doc)
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    by_id = {e["args"]["span_id"]: e for e in xs}
    rows = []
    for e in xs:
        parent = by_id.get(e["args"].get("parent_id"))
        rows.append((e["pid"], threads[(e["pid"], e["tid"])], e["cat"],
                     e["name"], parent["name"] if parent else None))
    return sorted(rows)


def test_chrome_trace_is_valid():
    doc = export_golden_doc()
    assert json.loads(json.dumps(doc)) == doc  # JSON-serializable
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert xs
    for e in xs:
        assert e["ts"] >= 0 and e["dur"] >= 0
        assert isinstance(e["args"]["span_id"], int)
    assert {0, 1} <= {e["pid"] for e in xs}  # one track per rank at least
    assert any(e["pid"] == NETWORK_PID for e in xs)  # wire lane


def test_all_pipeline_steps_exported():
    doc = export_golden_doc()
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert set(PIPELINE_STEPS) <= names


def test_nesting_is_well_formed_in_export():
    doc = export_golden_doc()
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    by_id = {e["args"]["span_id"]: e for e in xs}
    for e in xs:
        parent = by_id.get(e["args"].get("parent_id"))
        if parent is not None:
            assert parent["ts"] <= e["ts"]
            assert e["ts"] + e["dur"] <= parent["ts"] + parent["dur"] + 1e-6


def test_matches_golden_trace():
    golden = json.loads(GOLDEN.read_text())
    doc = export_golden_doc()
    assert _skeleton(doc) == _skeleton(golden)
    assert _threads(doc) == _threads(golden)


def test_streamed_writer_matches_committed_golden_bytes(tmp_path):
    """write_chrome_trace streams event-by-event, yet its bytes equal
    the committed golden file (which was produced by a full
    ``json.dumps(doc, indent=1, sort_keys=True)``)."""
    from repro.analysis import write_chrome_trace

    res = run_golden_workload()
    out = tmp_path / "stream.json"
    write_chrome_trace(res.tracer, out, elapsed=res.elapsed)
    assert out.read_bytes() == GOLDEN.read_bytes()


def test_streamed_writer_matches_json_dump(tmp_path):
    """The streaming serializer and the document serializer agree byte
    for byte on the same tracer (including the empty-trace edge)."""
    from repro.analysis import to_chrome_trace, write_chrome_trace
    from repro.sim.trace import Tracer

    res = run_golden_workload()
    for tracer, elapsed in ((res.tracer, res.elapsed), (Tracer(), None)):
        doc = to_chrome_trace(tracer, elapsed=elapsed)
        out = tmp_path / "stream.json"
        write_chrome_trace(tracer, out, elapsed=elapsed)
        assert out.read_text() == \
            json.dumps(doc, indent=1, sort_keys=True) + "\n"


def test_golden_has_compression_under_sender_prepare():
    """The MPC kernel must nest (possibly transitively) under the
    sender_prepare pipeline step — the hierarchy the tentpole adds."""
    golden = json.loads(GOLDEN.read_text())
    xs = [e for e in golden["traceEvents"] if e["ph"] == "X"]
    by_id = {e["args"]["span_id"]: e for e in xs}
    kernels = [e for e in xs if e["cat"] == "compression_kernel"]
    assert kernels
    for k in kernels:
        names = set()
        cur = k
        while cur["args"].get("parent_id") in by_id:
            cur = by_id[cur["args"]["parent_id"]]
            names.add(cur["name"])
        assert "sender_prepare" in names or "receiver_complete" in names
