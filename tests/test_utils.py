"""Unit tests for units and table formatting."""

import pytest

from repro.utils import (
    GB,
    GiB,
    KiB,
    MiB,
    Gbps,
    GBps,
    us,
    fmt_bytes,
    fmt_time,
    format_table,
    parse_size,
)


def test_unit_constants():
    assert GB == 1_000_000_000
    assert KiB == 1024
    assert MiB == 1024 ** 2
    assert GiB == 1024 ** 3


def test_bandwidth_converters():
    assert GBps(12.5) == pytest.approx(12.5e9)
    assert Gbps(100) == pytest.approx(12.5e9)  # IB EDR: 100 Gb/s = 12.5 GB/s


def test_us():
    assert us(20) == pytest.approx(20e-6)


@pytest.mark.parametrize(
    "text,expected",
    [
        ("4M", 4 * MiB),
        ("256K", 256 * KiB),
        ("1G", GiB),
        ("512KiB", 512 * KiB),
        ("2MiB", 2 * MiB),
        ("4096", 4096),
        (8192, 8192),
        ("1.5M", int(1.5 * MiB)),
    ],
)
def test_parse_size(text, expected):
    assert parse_size(text) == expected


def test_parse_size_invalid():
    with pytest.raises(ValueError):
        parse_size("4Q")


def test_fmt_bytes_osu_labels():
    assert fmt_bytes(256 * KiB) == "256K"
    assert fmt_bytes(32 * MiB) == "32M"
    assert fmt_bytes(GiB) == "1G"
    assert fmt_bytes(1000) == "1000"


def test_fmt_bytes_roundtrip_with_parse():
    for n in (256 * KiB, MiB, 32 * MiB):
        assert parse_size(fmt_bytes(n)) == n


def test_fmt_time_scales():
    assert fmt_time(5e-9).endswith("ns")
    assert fmt_time(5e-6).endswith("us")
    assert fmt_time(5e-3).endswith("ms")
    assert fmt_time(5.0).endswith("s")


def test_format_table_alignment():
    out = format_table(["name", "value"], [["a", 1.5], ["long-name", 22.25]])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert "1.50" in out and "22.25" in out
    assert set(lines[1]) <= {"-", " "}


def test_format_table_title():
    out = format_table(["x"], [[1]], title="Table 1")
    assert out.splitlines()[0] == "Table 1"


def test_format_table_empty_rows():
    out = format_table(["a", "b"], [])
    assert len(out.splitlines()) == 2
