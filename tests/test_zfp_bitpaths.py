"""Property test: ZFP's fast lane-based bit assembly must be
bit-identical to the reference bit-matrix oracle at every rate.

The vectorized packer (``pack_block_fields``) picks its lane word
size per block width and has three emission paths (exact-cover,
byte-aligned, bit-sliced); this sweep pins all of them, for the 1-D
and 2-D codecs, against the unpackbits-based reference.
"""

import numpy as np
import pytest

from repro.compression.zfp import (
    ZfpCompressor,
    _pack_block_fields_reference,
    _unpack_block_fields_reference,
    pack_block_fields,
    unpack_block_fields,
)
from repro.compression.zfp2d import Zfp2dCompressor


def _signal(n: int, dtype):
    x = np.arange(n, dtype=np.float64)
    out = np.sin(x / 7.0) * 100.0 + np.cos(x / 23.0) + x / 997.0
    out[::97] = 0.0  # exercise all-zero / mixed blocks
    out[5:9] = 0.0  # one fully-zero block
    return out.astype(dtype)


class _ReferenceZfp(ZfpCompressor):
    _bit_path = "reference"


@pytest.mark.parametrize("dtype,rates", [
    (np.float32, range(3, 33)),
    (np.float64, range(3, 65)),
])
def test_zfp1d_fast_matches_reference_all_rates(dtype, rates):
    data = _signal(1021, dtype)  # non-multiple of 4: tail block
    for rate in rates:
        fast = ZfpCompressor(rate)
        ref = _ReferenceZfp(rate)
        cf = fast.compress(data)
        cr = ref.compress(data)
        assert cf.payload.tobytes() == cr.payload.tobytes(), (
            f"stream mismatch at rate {rate} ({np.dtype(dtype).name})")
        df = fast.decompress(cf)
        dr = ref.decompress(cr)
        assert df.tobytes() == dr.tobytes(), (
            f"decode mismatch at rate {rate} ({np.dtype(dtype).name})")
        # Cross-decoding guards against compensating-error pairs.
        assert fast.decompress(cr).tobytes() == df.tobytes()


class _ReferenceZfp2d(Zfp2dCompressor):
    _bit_path = "reference"


@pytest.mark.parametrize("rate", range(1, 33))
def test_zfp2d_fast_matches_reference_all_rates(rate):
    data = _signal(37 * 18, np.float32).reshape(37, 18)  # padded edges
    fast = Zfp2dCompressor(rate)
    ref = _ReferenceZfp2d(rate)
    cf = fast.compress(data)
    cr = ref.compress(data)
    assert cf.payload.tobytes() == cr.payload.tobytes(), f"rate {rate}"
    assert fast.decompress(cf).tobytes() == ref.decompress(cr).tobytes()


def test_helper_roundtrip_matches_reference_odd_widths():
    rng = np.random.default_rng(7)
    for widths in ([12, 5, 3, 1], [12, 31, 17, 9], [7], [12, 33, 52, 40]):
        block_bits = sum(widths)
        nblocks = 65
        fields = [rng.integers(0, 1 << min(w, 62), nblocks, dtype=np.uint64)
                  for w in widths]
        fast = pack_block_fields(fields, widths, block_bits)
        ref = _pack_block_fields_reference(fields, widths, block_bits)
        assert fast.tobytes() == ref.tobytes(), widths
        got = unpack_block_fields(fast, widths, block_bits, nblocks)
        want = _unpack_block_fields_reference(ref, widths, block_bits, nblocks)
        for g, w_arr in zip(got, want):
            assert np.array_equal(g.astype(np.uint64), w_arr.astype(np.uint64))
